package decisions

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func entry(t float64) Entry {
	return Entry{TimeSeconds: t, Policy: "test"}
}

func TestRecord(t *testing.T) {
	snap := core.Snapshot{
		Time:         90 * time.Second,
		Limit:        50,
		PackagePower: 47.5,
		Apps: []core.AppState{{
			Spec:   core.AppSpec{Name: "gcc", Core: 0, Shares: 90},
			Freq:   3_200_000_000,
			IPS:    4e9,
			Power:  20,
			Parked: false,
		}},
	}
	actions := []core.Action{{Core: 0, Freq: 2_800_000_000}, {Core: 1, Park: true}}
	e := Record("frequency-shares", []core.Reason{core.ReasonPowerOverLimit, core.ReasonShareRebalance}, snap, actions)
	if e.Policy != "frequency-shares" || e.TimeSeconds != 90 {
		t.Fatalf("header: %+v", e)
	}
	if len(e.Reasons) != 2 || e.Reasons[0] != "power-over-limit" || e.Reasons[1] != "share-rebalance" {
		t.Fatalf("reasons = %v", e.Reasons)
	}
	if e.LimitWatts != 50 || e.PackagePowerWatts != 47.5 {
		t.Fatalf("power fields: %+v", e)
	}
	if len(e.Apps) != 1 || e.Apps[0].Name != "gcc" || e.Apps[0].MHz != 3200 {
		t.Fatalf("apps: %+v", e.Apps)
	}
	if len(e.Actions) != 2 || e.Actions[0].MHz != 2800 || !e.Actions[1].Park {
		t.Fatalf("actions: %+v", e.Actions)
	}
	if e.Actions[1].MHz != 0 {
		t.Fatalf("park action should carry no frequency: %+v", e.Actions[1])
	}
}

func TestJournalRing(t *testing.T) {
	j := NewJournal(4)
	for i := 1; i <= 6; i++ {
		j.Append(entry(float64(i)))
	}
	if j.Total() != 6 {
		t.Fatalf("total = %d, want 6", j.Total())
	}
	if j.Len() != 4 {
		t.Fatalf("len = %d, want 4", j.Len())
	}
	tail := j.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("tail len = %d, want 4", len(tail))
	}
	// Oldest first, and Seq keeps the absolute append position.
	for i, e := range tail {
		wantSeq := uint64(3 + i)
		if e.Seq != wantSeq || e.TimeSeconds != float64(3+i) {
			t.Fatalf("tail[%d] = seq %d t %v, want seq %d t %d", i, e.Seq, e.TimeSeconds, wantSeq, 3+i)
		}
	}
	if got := j.Tail(2); len(got) != 2 || got[1].Seq != 6 {
		t.Fatalf("tail(2) = %+v", got)
	}
	last, ok := j.Last()
	if !ok || last.Seq != 6 {
		t.Fatalf("last = %+v, %v", last, ok)
	}
}

func TestJournalPartiallyFilled(t *testing.T) {
	j := NewJournal(8)
	j.Append(entry(1))
	j.Append(entry(2))
	if j.Len() != 2 || j.Total() != 2 {
		t.Fatalf("len=%d total=%d", j.Len(), j.Total())
	}
	tail := j.Tail(10)
	if len(tail) != 2 || tail[0].Seq != 1 || tail[1].Seq != 2 {
		t.Fatalf("tail = %+v", tail)
	}
}

func TestJournalNil(t *testing.T) {
	var j *Journal
	j.Append(entry(1)) // must not panic
	if j.Len() != 0 || j.Total() != 0 {
		t.Fatalf("nil journal reported state")
	}
	if tail := j.Tail(5); tail != nil {
		t.Fatalf("nil journal tail = %v", tail)
	}
	if _, ok := j.Last(); ok {
		t.Fatalf("nil journal has a last entry")
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				j.Append(entry(float64(k)))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 200; k++ {
			j.Tail(8)
			j.Last()
			j.Len()
		}
	}()
	wg.Wait()
	if j.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", j.Total())
	}
	tail := j.Tail(0)
	if len(tail) != 16 {
		t.Fatalf("len = %d, want 16", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq != tail[i-1].Seq+1 {
			t.Fatalf("tail not sequential: %d then %d", tail[i-1].Seq, tail[i].Seq)
		}
	}
}
