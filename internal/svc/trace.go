package svc

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// TraceHeader is the optional first-line magic of an arrival trace file.
const TraceHeader = "padtrace/1"

// MaxTraceArrivals bounds how many arrivals a trace file may expand to;
// beyond it ParseTrace fails rather than exhausting memory on a
// hostile "xN" burst line.
const MaxTraceArrivals = 1 << 22

// ParseTrace reads an arrival trace: one arrival offset per line,
// non-decreasing, replayed by an OpenTrace service.
//
// Format (padtrace/1):
//
//	# comments and blank lines are ignored
//	padtrace/1          ← optional header line
//	150ms               ← Go duration syntax, or
//	0.15                ← plain seconds, optionally
//	2.5s x40            ← repeated xN for an N-request burst
//
// Offsets are relative to the start of the replay and must not
// decrease from line to line.
func ParseTrace(r io.Reader) ([]time.Duration, error) {
	var out []time.Duration
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if lineNo == 1 && line == TraceHeader {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) > 2 {
			return nil, fmt.Errorf("trace line %d: want \"<offset> [xN]\", got %q", lineNo, line)
		}
		off, err := parseOffset(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		repeat := 1
		if len(fields) == 2 {
			repeat, err = parseRepeat(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
			}
		}
		if len(out) > 0 && off < out[len(out)-1] {
			return nil, fmt.Errorf("trace line %d: offset %v decreases below %v", lineNo, off, out[len(out)-1])
		}
		if len(out)+repeat > MaxTraceArrivals {
			return nil, fmt.Errorf("trace line %d: more than %d arrivals", lineNo, MaxTraceArrivals)
		}
		for i := 0; i < repeat; i++ {
			out = append(out, off)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// ParseTraceString is ParseTrace over an in-memory trace.
func ParseTraceString(s string) ([]time.Duration, error) {
	return ParseTrace(strings.NewReader(s))
}

func parseOffset(s string) (time.Duration, error) {
	// Plain number → seconds; anything else must be a Go duration.
	if sec, err := strconv.ParseFloat(s, 64); err == nil {
		if sec < 0 {
			return 0, fmt.Errorf("negative offset %q", s)
		}
		d := time.Duration(sec * float64(time.Second))
		if d < 0 { // overflow of a huge but finite float
			return 0, fmt.Errorf("offset %q overflows", s)
		}
		return d, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad offset %q", s)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative offset %q", s)
	}
	return d, nil
}

func parseRepeat(s string) (int, error) {
	if !strings.HasPrefix(s, "x") {
		return 0, fmt.Errorf("bad repeat %q (want xN)", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad repeat %q (want xN, N ≥ 1)", s)
	}
	if n > MaxTraceArrivals {
		return 0, fmt.Errorf("repeat %q exceeds %d", s, MaxTraceArrivals)
	}
	return n, nil
}

// WriteTrace writes arrivals in the padtrace/1 format, coalescing runs
// of identical offsets into xN burst lines. ParseTrace(WriteTrace(t))
// reproduces t exactly.
func WriteTrace(w io.Writer, arrivals []time.Duration) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, TraceHeader); err != nil {
		return err
	}
	for i := 0; i < len(arrivals); {
		j := i
		for j < len(arrivals) && arrivals[j] == arrivals[i] {
			j++
		}
		var err error
		if n := j - i; n > 1 {
			_, err = fmt.Fprintf(bw, "%s x%d\n", arrivals[i], n)
		} else {
			_, err = fmt.Fprintf(bw, "%s\n", arrivals[i])
		}
		if err != nil {
			return err
		}
		i = j
	}
	return bw.Flush()
}

// PoissonTrace materialises a rate schedule into a concrete arrival
// trace of the given span: the deterministic bridge between "run
// against a schedule" and "replay the same arrivals from a file".
func PoissonTrace(sched RateSchedule, span time.Duration, seed int64) ([]time.Duration, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	s := &Service{rng: rand.New(rand.NewSource(seed))}
	var out []time.Duration
	at := s.expInterval(sched.At(0))
	for at <= span {
		if len(out) >= MaxTraceArrivals {
			return nil, fmt.Errorf("trace: schedule expands past %d arrivals over %v", MaxTraceArrivals, span)
		}
		out = append(out, at)
		at += s.expInterval(sched.At(at))
	}
	return out, nil
}
