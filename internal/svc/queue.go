package svc

import "time"

// wakeHeap is a min-heap of closed-loop wake times. It reimplements
// container/heap's sift algorithms over a concrete []time.Duration so
// pushes never box values into interfaces (the tick path must not
// allocate), while moving elements exactly as container/heap does —
// the original websearch model used container/heap, and bit-identical
// replay of it depends on identical ordering among equal keys.
type wakeHeap []time.Duration

func (h wakeHeap) len() int { return len(h) }

// min returns the earliest wake time; the heap must be non-empty.
func (h wakeHeap) min() time.Duration { return h[0] }

func (h *wakeHeap) push(at time.Duration) {
	*h = append(*h, at)
	s := *h
	j := len(s) - 1
	for {
		i := (j - 1) / 2 // parent
		if i == j || s[j] >= s[i] {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *wakeHeap) pop() time.Duration {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2] < s[j1] {
			j = j2
		}
		if s[j] >= s[i] {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	x := s[n]
	*h = s[:n]
	return x
}

// reqRing is a FIFO of requests backed by a ring so steady-state
// push/pop cycles never reallocate (a plain slice queue slides its
// window forward and forces append to re-grow periodically).
type reqRing struct {
	buf  []*request
	head int
	n    int
}

func (r *reqRing) len() int { return r.n }

func (r *reqRing) push(q *request) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = q
	r.n++
}

func (r *reqRing) pop() *request {
	if r.n == 0 {
		return nil
	}
	q := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return q
}

func (r *reqRing) grow() {
	size := len(r.buf) * 2
	if size < 16 {
		size = 16
	}
	nb := make([]*request, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
}

// latSample is one completion in the sliding window.
type latSample struct {
	at  time.Duration
	lat float64 // seconds
}

// latWindow is a fixed-capacity time-sliding ring of completion
// latencies: entries older than span are evicted, and when the ring is
// full the oldest entry is overwritten, so memory stays constant under
// any completion rate.
type latWindow struct {
	span time.Duration
	buf  []latSample
	head int
	n    int
}

func newLatWindow(span time.Duration, capacity int) latWindow {
	return latWindow{span: span, buf: make([]latSample, capacity)}
}

func (w *latWindow) count() int { return w.n }

func (w *latWindow) record(at time.Duration, lat float64) {
	w.evict(at)
	if w.n == len(w.buf) {
		w.head = (w.head + 1) % len(w.buf)
		w.n--
	}
	w.buf[(w.head+w.n)%len(w.buf)] = latSample{at: at, lat: lat}
	w.n++
}

// evict drops entries that fell out of the window ending at now.
func (w *latWindow) evict(now time.Duration) {
	cut := now - w.span
	for w.n > 0 && w.buf[w.head].at < cut {
		w.head = (w.head + 1) % len(w.buf)
		w.n--
	}
}

// appendLatencies appends the live entries' latencies to dst.
func (w *latWindow) appendLatencies(dst []float64) []float64 {
	for i := 0; i < w.n; i++ {
		dst = append(dst, w.buf[(w.head+i)%len(w.buf)].lat)
	}
	return dst
}

func (w *latWindow) mean() float64 {
	if w.n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < w.n; i++ {
		sum += w.buf[(w.head+i)%len(w.buf)].lat
	}
	return sum / float64(w.n)
}
