package svc

import (
	"fmt"
	"time"
)

// RatePoint is one breakpoint of a rate schedule's multiplier curve.
type RatePoint struct {
	At  time.Duration // offset within the period, ascending
	Mul float64       // multiplier applied to the base rate
}

// RateSchedule describes a time-varying open-loop arrival rate in
// requests per second. The base rate is shaped by a piecewise-linear
// multiplier curve that wraps modulo Period — the natural encoding of a
// diurnal load pattern compressed into a simulation-scale period. An
// empty curve means a constant Base.
type RateSchedule struct {
	Base   float64       // requests per second at multiplier 1.0
	Period time.Duration // curve period; required when Points are set
	Points []RatePoint   // multiplier breakpoints within [0, Period)
}

// ConstantRate is a flat schedule of r requests per second.
func ConstantRate(r float64) RateSchedule { return RateSchedule{Base: r} }

// Diurnal returns a day-like schedule compressed into period: a night
// trough at 35% of base, a midday shoulder at full base, and an evening
// peak at 115%. Experiments use it as the canonical open-loop load.
func Diurnal(base float64, period time.Duration) RateSchedule {
	return RateSchedule{
		Base:   base,
		Period: period,
		Points: []RatePoint{
			{At: 0, Mul: 0.35},
			{At: period * 25 / 100, Mul: 0.60},
			{At: period * 45 / 100, Mul: 1.00},
			{At: period * 60 / 100, Mul: 0.90},
			{At: period * 80 / 100, Mul: 1.15},
			{At: period * 95 / 100, Mul: 0.50},
		},
	}
}

// Validate reports whether the schedule is usable.
func (r RateSchedule) Validate() error {
	if r.Base < 0 {
		return fmt.Errorf("rate schedule: negative base rate %g", r.Base)
	}
	if len(r.Points) == 0 {
		return nil
	}
	if r.Period <= 0 {
		return fmt.Errorf("rate schedule: points without a positive period")
	}
	for i, p := range r.Points {
		if p.At < 0 || p.At >= r.Period {
			return fmt.Errorf("rate schedule: point %d offset %v outside [0, %v)", i, p.At, r.Period)
		}
		if i > 0 && p.At <= r.Points[i-1].At {
			return fmt.Errorf("rate schedule: point offsets not ascending at %d", i)
		}
		if p.Mul < 0 {
			return fmt.Errorf("rate schedule: point %d has negative multiplier", i)
		}
	}
	return nil
}

// At returns the arrival rate in requests per second at virtual time t,
// interpolating linearly between breakpoints and wrapping modulo the
// period. The evaluation allocates nothing.
func (r RateSchedule) At(t time.Duration) float64 {
	if len(r.Points) == 0 || r.Period <= 0 {
		return r.Base
	}
	tm := t % r.Period
	if tm < 0 {
		tm += r.Period
	}
	// Locate the segment [a, b) containing tm; the curve wraps from the
	// last breakpoint back to the first one a full period later.
	last := len(r.Points) - 1
	a, b := r.Points[last], r.Points[0]
	span := r.Period + b.At - a.At
	off := tm - a.At
	if off < 0 {
		off += r.Period
	}
	for i := 0; i < last; i++ {
		if r.Points[i].At <= tm && tm < r.Points[i+1].At {
			a, b = r.Points[i], r.Points[i+1]
			span = b.At - a.At
			off = tm - a.At
			break
		}
	}
	mul := a.Mul
	if span > 0 {
		mul += (b.Mul - a.Mul) * float64(off) / float64(span)
	}
	return r.Base * mul
}

// Peak returns the highest rate across the schedule's breakpoints (the
// base rate for a flat schedule) — the figure capacity planning wants.
func (r RateSchedule) Peak() float64 {
	if len(r.Points) == 0 {
		return r.Base
	}
	var m float64
	for _, p := range r.Points {
		if p.Mul > m {
			m = p.Mul
		}
	}
	return r.Base * m
}
