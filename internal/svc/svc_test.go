package svc

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
)

func newMachine(t *testing.T) *sim.Machine {
	t.Helper()
	m, err := sim.New(platform.Skylake())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no name", Config{Cores: []int{0}, Users: 5}},
		{"no cores", Config{Name: "a", Users: 5}},
		{"dup core", Config{Name: "a", Cores: []int{0, 0}, Users: 5}},
		{"negative core", Config{Name: "a", Cores: []int{-1}, Users: 5}},
		{"closed no users", Config{Name: "a", Cores: []int{0}, Arrivals: Closed}},
		{"poisson bad sched", Config{Name: "a", Cores: []int{0}, Arrivals: OpenPoisson,
			Rate: RateSchedule{Base: 10, Points: []RatePoint{{At: 0, Mul: 1}}}}}, // points without period
		{"trace unsorted", Config{Name: "a", Cores: []int{0}, Arrivals: OpenTrace,
			Trace: []time.Duration{time.Second, time.Millisecond}}},
		{"bad kind", Config{Name: "a", Cores: []int{0}, Arrivals: ArrivalKind(99)}},
		{"negative maxqueue", Config{Name: "a", Cores: []int{0}, Users: 5, MaxQueue: -1}},
		{"negative timeout", Config{Name: "a", Cores: []int{0}, Users: 5, Timeout: -time.Second}},
	}
	for _, c := range cases {
		if _, err := NewModel(c.cfg); err == nil {
			t.Errorf("%s: NewModel accepted invalid config", c.name)
		}
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := NewModel(); err == nil {
		t.Error("empty model accepted")
	}
	a := Config{Name: "a", Cores: []int{0}, Users: 5}
	b := Config{Name: "a", Cores: []int{1}, Users: 5}
	if _, err := NewModel(a, b); err == nil {
		t.Error("duplicate service names accepted")
	}
	b.Name = "b"
	b.Cores = []int{0}
	if _, err := NewModel(a, b); err == nil {
		t.Error("overlapping core pools accepted")
	}
	b.Cores = []int{1}
	md, err := NewModel(a, b)
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if err := md.Attach(m); err != nil {
		t.Fatal(err)
	}
	if err := md.Attach(m); err == nil {
		t.Error("double attach accepted")
	}
	if md.Service("a") == nil || md.Service("b") == nil || md.Service("zzz") != nil {
		t.Error("Service lookup broken")
	}
}

func TestPoissonServesAtRate(t *testing.T) {
	md, err := NewModel(Config{
		Name: "api", Cores: []int{0, 1, 2, 3}, Seed: 3,
		Arrivals: OpenPoisson, Rate: ConstantRate(300),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if err := md.Attach(m); err != nil {
		t.Fatal(err)
	}
	m.Run(10 * time.Second)
	s := md.Service("api")
	got := float64(s.Completed())
	if got < 2700 || got > 3300 {
		t.Errorf("completed %v requests in 10s at 300/s, want ≈3000", got)
	}
	if s.Dropped() != 0 || s.TimedOut() != 0 {
		t.Errorf("unbounded queue dropped=%d timedOut=%d", s.Dropped(), s.TimedOut())
	}
	if p50, p99 := s.WindowPercentile(50), s.WindowPercentile(99); p50 <= 0 || p99 < p50 {
		t.Errorf("window percentiles p50=%g p99=%g", p50, p99)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) (uint64, float64, float64) {
		md, err := NewModel(Config{
			Name: "api", Cores: []int{0, 1, 2}, Seed: seed,
			Arrivals: OpenPoisson, Rate: Diurnal(600, 4*time.Second),
			MaxQueue: 200, Timeout: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := newMachine(t)
		if err := md.Attach(m); err != nil {
			t.Fatal(err)
		}
		m.SetPowerLimit(40)
		m.Run(8 * time.Second)
		s := md.Service("api")
		return s.Completed(), s.WindowPercentile(99), s.Throughput()
	}
	c1, p1, th1 := run(11)
	c2, p2, th2 := run(11)
	if c1 != c2 || p1 != p2 || th1 != th2 {
		t.Errorf("same seed diverged: (%d %g %g) vs (%d %g %g)", c1, p1, th1, c2, p2, th2)
	}
	c3, p3, _ := run(12)
	if c1 == c3 && p1 == p3 {
		t.Error("different seeds produced identical runs")
	}
}

func TestDiurnalLoadShapesCompletions(t *testing.T) {
	period := 10 * time.Second
	md, err := NewModel(Config{
		Name: "api", Cores: []int{0, 1, 2, 3, 4, 5}, Seed: 5,
		Arrivals: OpenPoisson, Rate: Diurnal(350, period),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if err := md.Attach(m); err != nil {
		t.Fatal(err)
	}
	s := md.Service("api")
	// Trough: first 20% of the period. Peak: 75–90%.
	m.Run(period * 20 / 100)
	trough := s.Completed()
	m.Run(period * 55 / 100)
	preP := s.Completed()
	m.Run(period * 15 / 100)
	peak := s.Completed() - preP
	// Peak window is 3/4 the trough window's length but a ~2.5× rate.
	if float64(peak) < 1.5*float64(trough) {
		t.Errorf("peak window completed %d, trough %d; diurnal shape not visible", peak, trough)
	}
}

func TestBoundedQueueDropsAndCounts(t *testing.T) {
	// 1 slow core against 2000 req/s: the queue bound must hold and
	// overflow must be counted, arrivals conserved.
	md, err := NewModel(Config{
		Name: "api", Cores: []int{0}, Seed: 9,
		Arrivals: OpenPoisson, Rate: ConstantRate(2000),
		MaxQueue: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if err := md.Attach(m); err != nil {
		t.Fatal(err)
	}
	s := md.Service("api")
	for i := 0; i < 4000; i++ {
		m.Step()
		if q := s.QueueLen(); q > 50 {
			t.Fatalf("queue length %d exceeded MaxQueue 50", q)
		}
	}
	if s.Dropped() == 0 {
		t.Error("overloaded bounded queue recorded no drops")
	}
	if s.Arrived() != s.Completed()+s.Dropped()+uint64(s.InFlight())+s.TimedOut() {
		t.Errorf("request conservation: arrived=%d completed=%d dropped=%d inflight=%d timedout=%d",
			s.Arrived(), s.Completed(), s.Dropped(), s.InFlight(), s.TimedOut())
	}
}

func TestTimeoutExpiresWaiters(t *testing.T) {
	md, err := NewModel(Config{
		Name: "api", Cores: []int{0}, Seed: 9,
		Arrivals: OpenPoisson, Rate: ConstantRate(1500),
		Timeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if err := md.Attach(m); err != nil {
		t.Fatal(err)
	}
	m.Run(4 * time.Second)
	s := md.Service("api")
	if s.TimedOut() == 0 {
		t.Error("saturated single-core service expired no waiters")
	}
}

func TestClosedLoopTimeoutReturnsUsersToThinking(t *testing.T) {
	// With a queue bound and timeouts, the closed-loop population must
	// not leak: users keep cycling, so completions keep accruing.
	md, err := NewModel(Config{
		Name: "ws", Cores: []int{0}, Seed: 4,
		Arrivals: Closed, Users: 80,
		MaxQueue: 10, Timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if err := md.Attach(m); err != nil {
		t.Fatal(err)
	}
	s := md.Service("ws")
	m.Run(5 * time.Second)
	mid := s.Completed()
	m.Run(5 * time.Second)
	if s.Dropped() == 0 && s.TimedOut() == 0 {
		t.Skip("load never saturated the bound; nothing to check")
	}
	if s.Completed() <= mid {
		t.Errorf("population leaked: completions stalled at %d after drops/timeouts", mid)
	}
	if got := s.InFlight(); got > 80 {
		t.Errorf("in-flight %d exceeds the closed-loop population", got)
	}
}

func TestTraceReplayArrivals(t *testing.T) {
	trace := []time.Duration{0, 10 * time.Millisecond, 10 * time.Millisecond, 500 * time.Millisecond, time.Second}
	md, err := NewModel(Config{
		Name: "replay", Cores: []int{0, 1}, Seed: 1,
		Arrivals: OpenTrace, Trace: trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if err := md.Attach(m); err != nil {
		t.Fatal(err)
	}
	m.Run(2 * time.Second)
	s := md.Service("replay")
	if s.Arrived() != uint64(len(trace)) {
		t.Errorf("arrived %d, want %d", s.Arrived(), len(trace))
	}
	if s.Completed() != uint64(len(trace)) {
		t.Errorf("completed %d, want %d", s.Completed(), len(trace))
	}
}

func TestServiceSLOTelemetry(t *testing.T) {
	md, err := NewModel(
		Config{Name: "api", Cores: []int{0, 1, 2, 3}, Seed: 2,
			Arrivals: OpenPoisson, Rate: ConstantRate(600), SLO: 40 * time.Millisecond},
		Config{Name: "search", Cores: []int{4, 5}, Seed: 3,
			Arrivals: Closed, Users: 50},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if err := md.Attach(m); err != nil {
		t.Fatal(err)
	}
	m.Run(5 * time.Second)
	out := md.FillServiceSLO(nil)
	if len(out) != 2 {
		t.Fatalf("got %d entries, want 2", len(out))
	}
	api, search := out[0], out[1]
	if api.Name != "api" || search.Name != "search" {
		t.Fatalf("order/name wrong: %+v", out)
	}
	if api.Target != 0.04 {
		t.Errorf("api target %g, want 0.04", api.Target)
	}
	if search.Target != 0 {
		t.Errorf("search has no SLO but target %g", search.Target)
	}
	for _, e := range out {
		if e.P50 <= 0 || e.P90 < e.P50 || e.P99 < e.P90 {
			t.Errorf("%s: percentile ordering broken: %+v", e.Name, e)
		}
		if e.Rate <= 0 {
			t.Errorf("%s: zero window rate", e.Name)
		}
	}
}

func TestSlidingWindowForgets(t *testing.T) {
	var w latWindow
	w = newLatWindow(time.Second, 8)
	w.record(100*time.Millisecond, 5.0) // will age out
	for i := 0; i < 4; i++ {
		w.record(2*time.Second+time.Duration(i)*time.Millisecond, 0.01)
	}
	w.evict(2 * time.Second)
	if w.count() != 4 {
		t.Fatalf("window holds %d entries, want 4", w.count())
	}
	xs := w.appendLatencies(nil)
	for _, x := range xs {
		if x == 5.0 {
			t.Error("aged-out sample still in window")
		}
	}
	// Capacity overwrite: 20 more entries at the same time keep only 8.
	for i := 0; i < 20; i++ {
		w.record(2*time.Second, 1.0)
	}
	if w.count() != 8 {
		t.Errorf("window grew to %d past its capacity 8", w.count())
	}
}

func TestResetStatsKeepsQueueState(t *testing.T) {
	md, err := NewModel(Config{Name: "ws", Cores: []int{0}, Seed: 1,
		Arrivals: Closed, Users: 60, RecordAll: true})
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if err := md.Attach(m); err != nil {
		t.Fatal(err)
	}
	m.Run(2 * time.Second)
	s := md.Service("ws")
	before := s.InFlight()
	s.ResetStats()
	if s.LatencyPercentile(90) != 0 {
		t.Error("latency record survived ResetStats")
	}
	if s.InFlight() != before {
		t.Error("ResetStats disturbed queue state")
	}
	if s.Completed() == 0 {
		t.Error("completions lost")
	}
}

func TestOfferedLoad(t *testing.T) {
	closed := Config{Name: "a", Cores: []int{0, 1}, Users: 100, Arrivals: Closed}
	if l := closed.OfferedLoad(2500 * units.MHz); l <= 0 {
		t.Errorf("closed offered load %g", l)
	}
	open := Config{Name: "a", Cores: []int{0, 1}, Arrivals: OpenPoisson, Rate: ConstantRate(100)}
	l := open.OfferedLoad(2500 * units.MHz)
	want := 100 * (25e6 / 2.5e9) / 2
	if l < want*0.99 || l > want*1.01 {
		t.Errorf("open offered load %g, want ≈%g", l, want)
	}
	if (Config{}).OfferedLoad(0) != 0 {
		t.Error("zero frequency should give zero load")
	}
}

func TestThrottlingRaisesTail(t *testing.T) {
	run := func(limit units.Watts) float64 {
		md, err := NewModel(Config{
			Name: "api", Cores: []int{0, 1, 2, 3, 4, 5, 6, 7}, Seed: 2,
			Arrivals: OpenPoisson, Rate: ConstantRate(1500),
		})
		if err != nil {
			t.Fatal(err)
		}
		m := newMachine(t)
		if err := md.Attach(m); err != nil {
			t.Fatal(err)
		}
		m.SetPowerLimit(limit)
		m.Run(8 * time.Second)
		return md.Service("api").WindowPercentile(99)
	}
	fast, slow := run(95), run(30)
	if slow <= fast*1.2 {
		t.Errorf("p99 under 30 W (%gs) should be well above 95 W (%gs)", slow, fast)
	}
}

// TestAdvanceZeroAlloc proves the steady-state tick and telemetry path
// never allocates — the property the svc_tick bench entries gate in CI.
func TestAdvanceZeroAlloc(t *testing.T) {
	md, err := NewModel(
		Config{Name: "api", Cores: []int{0, 1, 2, 3}, Seed: 2,
			Arrivals: OpenPoisson, Rate: Diurnal(900, 2*time.Second), MaxQueue: 256, SLO: 50 * time.Millisecond},
		Config{Name: "ws", Cores: []int{4, 5, 6}, Seed: 3,
			Arrivals: Closed, Users: 120, Timeout: 500 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t)
	if err := md.Attach(m); err != nil {
		t.Fatal(err)
	}
	m.Run(3 * time.Second) // warm rings, free lists, and windows
	buf := md.FillServiceSLO(nil)
	n := testing.AllocsPerRun(200, func() {
		md.Advance(time.Millisecond)
		buf = md.FillServiceSLO(buf[:0])
	})
	if n != 0 {
		t.Errorf("allocs per tick = %v, want 0", n)
	}
	var slo []core.ServiceSLO = buf
	_ = slo
}
