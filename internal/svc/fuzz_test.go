package svc

import (
	"bytes"
	"testing"
)

// FuzzParseTrace hardens the arrival-trace parser: arbitrary input must
// never panic or exhaust memory, and every accepted trace must satisfy
// the replay invariants (non-negative, non-decreasing, bounded) and
// survive a write/parse round trip unchanged.
func FuzzParseTrace(f *testing.F) {
	f.Add("padtrace/1\n150ms\n0.2\n2.5s x3\n")
	f.Add("# nothing but comments\n\n")
	f.Add("0\n0\n1e3\n")
	f.Add("1s x4096\n")
	f.Add("banana\n")
	f.Add("9999999999h\n")
	f.Add("1s x-3\n-5\n")
	f.Fuzz(func(t *testing.T, in string) {
		arr, err := ParseTraceString(in)
		if err != nil {
			return
		}
		if len(arr) > MaxTraceArrivals {
			t.Fatalf("accepted %d arrivals past the bound", len(arr))
		}
		for i, a := range arr {
			if a < 0 {
				t.Fatalf("accepted negative arrival %v at %d", a, i)
			}
			if i > 0 && a < arr[i-1] {
				t.Fatalf("accepted decreasing arrivals at %d: %v after %v", i, a, arr[i-1])
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, arr); err != nil {
			t.Fatalf("WriteTrace on accepted trace: %v", err)
		}
		back, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("reparse of written trace: %v", err)
		}
		if len(back) != len(arr) {
			t.Fatalf("round trip length %d, want %d", len(back), len(arr))
		}
		for i := range arr {
			if back[i] != arr[i] {
				t.Fatalf("round trip arrival %d = %v, want %v", i, back[i], arr[i])
			}
		}
	})
}
