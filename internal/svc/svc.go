// Package svc models multi-tenant latency services: named request
// queues co-located on disjoint core pools of one sim.Machine, each
// drained at the cores' effective frequency so power policies directly
// shape tail latency.
//
// The package generalises the closed-loop websearch model (Figures 5,
// 12, 13) into an open-loop latency-service subsystem:
//
//   - Closed arrivals reproduce the paper's N-user think/submit loop
//     bit-for-bit (internal/websearch is now a thin adapter over it);
//   - OpenPoisson draws arrivals from a Poisson process whose rate can
//     follow a diurnal RateSchedule;
//   - OpenTrace replays arrival offsets parsed from a trace file
//     (see ParseTrace for the format).
//
// Every service keeps per-completion latency in a sliding window and
// reports p50/p90/p99, rate, queue depth, and drop/timeout counts as
// core.ServiceSLO telemetry the daemon attaches to policy snapshots.
// Runs are deterministic for a given seed: the RNG consumption order is
// fixed (documented on tick) so a replay with the same config and tick
// sequence is bit-identical.
//
// The steady-state tick path is allocation-free: requests come from a
// free list, the queue is a ring, the latency window is a fixed ring,
// and the closed-loop wake heap stores raw durations (no interface
// boxing). svc_tick/* entries in BENCH_loop.json sit under the CI
// zero-alloc gate.
package svc

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// InteractiveProfile is the default power/performance stand-in pinned to
// each serving core: moderately memory-bound, not AVX-heavy, effectively
// endless. It matches the paper's websearch profile except for the name.
var InteractiveProfile = workload.Profile{
	Name:              "interactive",
	BaseCPI:           1.0,
	MemStall:          0.15e-9,
	Activity:          0.95,
	TotalInstructions: 1e15,
}

// ArrivalKind selects a service's arrival process.
type ArrivalKind int

const (
	// Closed is the paper's closed-loop population: Users cycle between
	// exponential think time and submitting one request.
	Closed ArrivalKind = iota
	// OpenPoisson draws open-loop arrivals from a Poisson process whose
	// rate follows the service's RateSchedule.
	OpenPoisson
	// OpenTrace replays the arrival offsets in Config.Trace.
	OpenTrace
)

func (k ArrivalKind) String() string {
	switch k {
	case Closed:
		return "closed"
	case OpenPoisson:
		return "poisson"
	case OpenTrace:
		return "trace"
	}
	return fmt.Sprintf("ArrivalKind(%d)", int(k))
}

// Config parameterises one latency service.
type Config struct {
	Name  string
	Cores []int // serving cores, disjoint from every other service's
	Seed  int64 // per-service RNG seed

	Arrivals ArrivalKind

	// Closed-loop knobs.
	Users     int           // concurrent users (Closed only)
	ThinkTime time.Duration // mean exponential think time (default 600 ms)

	// Open-loop knobs.
	Rate  RateSchedule    // arrival rate (OpenPoisson)
	Trace []time.Duration // non-decreasing arrival offsets (OpenTrace)

	// ServiceCycles is the mean exponential demand per request in cycles
	// (default 25e6, the websearch figure).
	ServiceCycles float64

	// MaxQueue bounds the number of waiting requests; arrivals beyond it
	// are dropped and counted. 0 means unbounded.
	MaxQueue int
	// Timeout abandons requests that waited longer than this before
	// reaching a core; expiries are counted. 0 means none.
	Timeout time.Duration

	// Window is the sliding latency-statistics span (default 10 s);
	// WindowCap caps the samples kept in it (default 4096, oldest
	// overwritten first).
	Window    time.Duration
	WindowCap int

	// RecordAll additionally keeps every completed latency since the
	// last ResetStats — the closed-loop experiments' percentile source.
	RecordAll bool

	// SLO is the advisory p99 objective carried into telemetry
	// (core.ServiceSLO.Target). 0 means no SLO.
	SLO time.Duration

	// Profile is the power profile pinned to each serving core
	// (default InteractiveProfile).
	Profile workload.Profile
}

func (c *Config) fill() {
	if c.ThinkTime <= 0 {
		c.ThinkTime = 600 * time.Millisecond
	}
	if c.ServiceCycles <= 0 {
		c.ServiceCycles = 25e6
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.WindowCap <= 0 {
		c.WindowCap = 4096
	}
	if c.Profile.Name == "" {
		c.Profile = InteractiveProfile
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("svc: service has no name")
	}
	if len(c.Cores) == 0 {
		return fmt.Errorf("svc: service %s has no serving cores", c.Name)
	}
	seen := make(map[int]bool)
	for _, core := range c.Cores {
		if core < 0 {
			return fmt.Errorf("svc: service %s has negative core %d", c.Name, core)
		}
		if seen[core] {
			return fmt.Errorf("svc: service %s lists core %d twice", c.Name, core)
		}
		seen[core] = true
	}
	switch c.Arrivals {
	case Closed:
		if c.Users <= 0 {
			return fmt.Errorf("svc: closed-loop service %s needs positive Users", c.Name)
		}
	case OpenPoisson:
		if err := c.Rate.Validate(); err != nil {
			return fmt.Errorf("svc: service %s: %w", c.Name, err)
		}
	case OpenTrace:
		for i := 1; i < len(c.Trace); i++ {
			if c.Trace[i] < c.Trace[i-1] {
				return fmt.Errorf("svc: service %s trace not sorted at entry %d", c.Name, i)
			}
		}
		if len(c.Trace) > 0 && c.Trace[0] < 0 {
			return fmt.Errorf("svc: service %s trace starts before zero", c.Name)
		}
	default:
		return fmt.Errorf("svc: service %s has unknown arrival kind %d", c.Name, int(c.Arrivals))
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("svc: service %s has negative MaxQueue", c.Name)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("svc: service %s has negative Timeout", c.Name)
	}
	return nil
}

// request is one in-flight unit of work.
type request struct {
	submitted time.Duration
	remaining float64 // cycles of demand left
	next      *request
}

// Service is the running state of one latency service.
type Service struct {
	cfg Config
	m   *sim.Machine
	rng *rand.Rand
	now time.Duration

	thinkers    wakeHeap      // Closed
	nextArrival time.Duration // OpenPoisson
	traceIdx    int           // OpenTrace

	queue     reqRing
	inService []*request // one slot per serving core
	free      *request   // recycled request records

	arrived   uint64
	completed uint64
	dropped   uint64
	timedOut  uint64

	latencies []float64 // RecordAll log, seconds, since last ResetStats
	win       latWindow
	scratch   []float64 // window percentile sort scratch
}

func newService(cfg Config) (*Service, error) {
	cfg.fill()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Service{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		inService: make([]*request, len(cfg.Cores)),
		win:       newLatWindow(cfg.Window, cfg.WindowCap),
		scratch:   make([]float64, 0, cfg.WindowCap),
	}
	switch cfg.Arrivals {
	case Closed:
		// All users start thinking with staggered first submissions so
		// the warm-up is smooth. The draw order here is load-bearing:
		// it reproduces the original websearch model bit-for-bit.
		for i := 0; i < cfg.Users; i++ {
			s.thinkers.push(s.expDuration(cfg.ThinkTime))
		}
	case OpenPoisson:
		s.nextArrival = s.expInterval(cfg.Rate.At(0))
	}
	return s, nil
}

func (s *Service) expDuration(mean time.Duration) time.Duration {
	return time.Duration(s.rng.ExpFloat64() * float64(mean))
}

// expInterval draws the gap to the next Poisson arrival at rate r
// (requests/second). A dead schedule (rate 0) is re-probed every 100 ms
// of virtual time without consuming randomness.
func (s *Service) expInterval(r float64) time.Duration {
	if r <= 0 {
		return 100 * time.Millisecond
	}
	return time.Duration(s.rng.ExpFloat64() / r * float64(time.Second))
}

// tick advances the service by dt using the machine's current effective
// core frequencies.
//
// RNG consumption order per tick (fixed; replays depend on it):
//  1. one ServiceCycles draw per admitted arrival, in arrival order
//     (plus, Closed only, one ThinkTime draw per queue-full drop);
//  2. one ThinkTime draw per completion or timeout (Closed only), in
//     completion order across the core slots in Cores order.
func (s *Service) tick(dt time.Duration) {
	s.now += dt
	s.admit()
	// Each serving core drains cycles from its request, picking up new
	// work from the shared queue as requests complete.
	for slot, c := range s.cfg.Cores {
		budget := s.m.EffectiveFreq(c).Cycles(dt)
		for budget > 0 {
			req := s.inService[slot]
			if req == nil {
				req = s.dequeue()
				if req == nil {
					break
				}
				s.inService[slot] = req
			}
			if req.remaining > budget {
				req.remaining -= budget
				budget = 0
				break
			}
			budget -= req.remaining
			s.complete(req)
			s.inService[slot] = nil
		}
	}
}

// admit moves every arrival due by now into the queue.
func (s *Service) admit() {
	switch s.cfg.Arrivals {
	case Closed:
		for s.thinkers.len() > 0 && s.thinkers.min() <= s.now {
			s.thinkers.pop()
			s.submit()
		}
	case OpenPoisson:
		for s.nextArrival <= s.now {
			at := s.nextArrival
			s.nextArrival = at + s.expInterval(s.cfg.Rate.At(at))
			s.submit()
		}
	case OpenTrace:
		for s.traceIdx < len(s.cfg.Trace) && s.cfg.Trace[s.traceIdx] <= s.now {
			s.traceIdx++
			s.submit()
		}
	}
}

func (s *Service) submit() {
	s.arrived++
	if s.cfg.MaxQueue > 0 && s.queue.len() >= s.cfg.MaxQueue {
		s.dropped++
		if s.cfg.Arrivals == Closed {
			// The rejected user goes back to thinking.
			s.thinkers.push(s.now + s.expDuration(s.cfg.ThinkTime))
		}
		return
	}
	req := s.alloc()
	req.submitted = s.now
	req.remaining = s.rng.ExpFloat64() * s.cfg.ServiceCycles
	s.queue.push(req)
}

// dequeue pops the next serviceable request, expiring timed-out waiters.
func (s *Service) dequeue() *request {
	for {
		req := s.queue.pop()
		if req == nil {
			return nil
		}
		if s.cfg.Timeout > 0 && s.now-req.submitted > s.cfg.Timeout {
			s.timedOut++
			if s.cfg.Arrivals == Closed {
				s.thinkers.push(s.now + s.expDuration(s.cfg.ThinkTime))
			}
			s.recycle(req)
			continue
		}
		return req
	}
}

func (s *Service) complete(req *request) {
	lat := (s.now - req.submitted).Seconds()
	if s.cfg.RecordAll {
		s.latencies = append(s.latencies, lat)
	}
	s.completed++
	s.win.record(s.now, lat)
	if s.cfg.Arrivals == Closed {
		s.thinkers.push(s.now + s.expDuration(s.cfg.ThinkTime))
	}
	s.recycle(req)
}

func (s *Service) alloc() *request {
	if q := s.free; q != nil {
		s.free = q.next
		q.next = nil
		return q
	}
	return &request{}
}

func (s *Service) recycle(q *request) {
	q.next = s.free
	s.free = q
}

// Name returns the service's configured name.
func (s *Service) Name() string { return s.cfg.Name }

// Cores returns the serving cores (caller must not mutate).
func (s *Service) Cores() []int { return s.cfg.Cores }

// Completed reports requests finished so far.
func (s *Service) Completed() uint64 { return s.completed }

// Arrived reports requests submitted so far (including drops).
func (s *Service) Arrived() uint64 { return s.arrived }

// Dropped reports arrivals rejected by the queue bound.
func (s *Service) Dropped() uint64 { return s.dropped }

// TimedOut reports requests abandoned after waiting past Timeout.
func (s *Service) TimedOut() uint64 { return s.timedOut }

// QueueLen reports the requests currently waiting (not in service).
func (s *Service) QueueLen() int { return s.queue.len() }

// InFlight reports queued plus in-service requests.
func (s *Service) InFlight() int {
	n := s.queue.len()
	for _, r := range s.inService {
		if r != nil {
			n++
		}
	}
	return n
}

// LatencyPercentile returns the p-th percentile of completed latencies
// in seconds. With RecordAll it covers everything since the last
// ResetStats (the closed-loop experiments' view); otherwise it covers
// the sliding window.
func (s *Service) LatencyPercentile(p float64) float64 {
	if s.cfg.RecordAll {
		return stats.Percentile(s.latencies, p)
	}
	return s.WindowPercentile(p)
}

// WindowPercentile returns the p-th latency percentile in seconds over
// the sliding window.
func (s *Service) WindowPercentile(p float64) float64 {
	xs := s.windowSorted()
	if len(xs) == 0 {
		return 0
	}
	return stats.PercentileSorted(xs, p)
}

// windowSorted refreshes the sort scratch from the live window entries.
func (s *Service) windowSorted() []float64 {
	s.win.evict(s.now)
	s.scratch = s.win.appendLatencies(s.scratch[:0])
	sort.Float64s(s.scratch)
	return s.scratch
}

// MeanLatency returns the mean completed latency in seconds (RecordAll
// log when enabled, sliding window otherwise).
func (s *Service) MeanLatency() float64 {
	if s.cfg.RecordAll {
		return stats.Mean(s.latencies)
	}
	s.win.evict(s.now)
	return s.win.mean()
}

// Throughput returns completed requests per second of virtual time
// since the model started.
func (s *Service) Throughput() float64 {
	sec := s.now.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(s.completed) / sec
}

// WindowRate returns completions per second over the sliding window.
func (s *Service) WindowRate() float64 {
	s.win.evict(s.now)
	span := s.cfg.Window
	if s.now < span {
		span = s.now
	}
	if span <= 0 {
		return 0
	}
	return float64(s.win.count()) / span.Seconds()
}

// ResetStats clears the RecordAll latency log (for discarding warm-up)
// without disturbing the queueing state or the sliding window.
func (s *Service) ResetStats() { s.latencies = s.latencies[:0] }

// ServiceSLO condenses the service's current window into the snapshot
// telemetry form consumed by core.SLOFeedback.
func (s *Service) ServiceSLO() core.ServiceSLO {
	out := core.ServiceSLO{
		Name:     s.cfg.Name,
		Target:   s.cfg.SLO.Seconds(),
		Rate:     s.WindowRate(),
		QueueLen: s.queue.len(),
		Dropped:  s.dropped,
		Timeouts: s.timedOut,
	}
	if xs := s.windowSorted(); len(xs) > 0 {
		out.P50 = stats.PercentileSorted(xs, 50)
		out.P90 = stats.PercentileSorted(xs, 90)
		out.P99 = stats.PercentileSorted(xs, 99)
	}
	return out
}

// OfferedLoad estimates the serving pool's utilisation at frequency f:
// demand rate divided by service capacity. Values near or above 1 mean
// saturation. For open-loop services the arrival rate is the schedule's
// peak; for closed loops it is the population's upper bound.
func (c Config) OfferedLoad(f units.Hertz) float64 {
	cfg := c
	cfg.fill()
	if f <= 0 || len(cfg.Cores) == 0 {
		return 0
	}
	serviceTime := cfg.ServiceCycles / float64(f)
	var lambda float64
	switch cfg.Arrivals {
	case Closed:
		lambda = float64(cfg.Users) / (cfg.ThinkTime.Seconds() + serviceTime)
	case OpenPoisson:
		lambda = cfg.Rate.Peak()
	case OpenTrace:
		if n := len(cfg.Trace); n > 1 {
			span := (cfg.Trace[n-1] - cfg.Trace[0]).Seconds()
			if span > 0 {
				lambda = float64(n) / span
			}
		}
	}
	return lambda * serviceTime / float64(len(cfg.Cores))
}

// Model co-locates several services on one machine. Services' core
// pools must be disjoint; the model pins each service's power profile
// and advances every queue from the machine's tick hook.
type Model struct {
	m        *sim.Machine
	services []*Service
	byName   map[string]*Service
}

// NewModel builds the co-location model; call Attach to wire it to a
// machine.
func NewModel(cfgs ...Config) (*Model, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("svc: no services")
	}
	md := &Model{byName: make(map[string]*Service, len(cfgs))}
	owner := make(map[int]string)
	for _, cfg := range cfgs {
		s, err := newService(cfg)
		if err != nil {
			return nil, err
		}
		if _, dup := md.byName[s.cfg.Name]; dup {
			return nil, fmt.Errorf("svc: duplicate service name %s", s.cfg.Name)
		}
		for _, c := range s.cfg.Cores {
			if other, taken := owner[c]; taken {
				return nil, fmt.Errorf("svc: core %d claimed by both %s and %s", c, other, s.cfg.Name)
			}
			owner[c] = s.cfg.Name
		}
		md.byName[s.cfg.Name] = s
		md.services = append(md.services, s)
	}
	return md, nil
}

// Attach pins each service's power profile to its cores and registers
// the queueing model on the machine's tick hook.
func (md *Model) Attach(m *sim.Machine) error {
	if md.m != nil {
		return fmt.Errorf("svc: already attached")
	}
	for _, s := range md.services {
		for _, c := range s.cfg.Cores {
			if err := m.Pin(workload.NewInstance(s.cfg.Profile), c); err != nil {
				return fmt.Errorf("svc: %s: %w", s.cfg.Name, err)
			}
		}
	}
	md.m = m
	for _, s := range md.services {
		s.m = m
	}
	m.OnTick(md.Advance)
	return nil
}

// Advance ticks every service by dt. Attach wires it to the machine;
// it is exported so benchmarks can drive the queues directly.
func (md *Model) Advance(dt time.Duration) {
	for _, s := range md.services {
		s.tick(dt)
	}
}

// Services returns the model's services in construction order.
func (md *Model) Services() []*Service { return md.services }

// Service returns the named service, or nil.
func (md *Model) Service(name string) *Service { return md.byName[name] }

// FillServiceSLO appends every service's current window telemetry to
// dst in construction order and returns it. With a caller-owned dst of
// sufficient capacity the steady-state call is allocation-free; the
// daemon double-buffers it into policy snapshots.
func (md *Model) FillServiceSLO(dst []core.ServiceSLO) []core.ServiceSLO {
	for _, s := range md.services {
		dst = append(dst, s.ServiceSLO())
	}
	return dst
}
