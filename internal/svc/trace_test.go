package svc

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseTrace(t *testing.T) {
	in := `padtrace/1
# a comment

150ms
0.2
2.5s x3
2.5s
`
	got, err := ParseTraceString(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{
		150 * time.Millisecond,
		200 * time.Millisecond,
		2500 * time.Millisecond, 2500 * time.Millisecond, 2500 * time.Millisecond,
		2500 * time.Millisecond,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d arrivals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("arrival %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := map[string]string{
		"garbage offset":   "banana\n",
		"negative seconds": "-1.5\n",
		"negative dur":     "-10ms\n",
		"decreasing":       "1s\n0.5s\n",
		"bad repeat":       "1s y3\n",
		"zero repeat":      "1s x0\n",
		"extra fields":     "1s x3 x4\n",
		"huge repeat":      "1s x99999999\n",
	}
	for name, in := range cases {
		if _, err := ParseTraceString(in); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	arr := []time.Duration{0, 0, 5 * time.Millisecond, time.Second, time.Second, time.Second, 90 * time.Minute}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, arr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x3") {
		t.Errorf("burst not coalesced:\n%s", buf.String())
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(arr) {
		t.Fatalf("round trip length %d, want %d", len(got), len(arr))
	}
	for i := range arr {
		if got[i] != arr[i] {
			t.Errorf("round trip arrival %d = %v, want %v", i, got[i], arr[i])
		}
	}
}

func TestPoissonTrace(t *testing.T) {
	sched := Diurnal(500, 4*time.Second)
	tr, err := PoissonTrace(sched, 8*time.Second, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(tr); i++ {
		if tr[i] < tr[i-1] {
			t.Fatalf("trace not sorted at %d", i)
		}
	}
	// Mean multiplier of the diurnal curve is well under 1; expect
	// meaningfully fewer than base*span arrivals but not absurdly few.
	if n := len(tr); n < 1000 || n > 4000 {
		t.Errorf("trace holds %d arrivals over 8s at base 500/s diurnal, want ~2800", n)
	}
	tr2, err := PoissonTrace(sched, 8*time.Second, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != len(tr2) || tr[len(tr)-1] != tr2[len(tr2)-1] {
		t.Error("PoissonTrace not deterministic for a fixed seed")
	}
	if _, err := PoissonTrace(RateSchedule{Base: -1}, time.Second, 1); err == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestRateScheduleAt(t *testing.T) {
	flat := ConstantRate(42)
	if r := flat.At(17 * time.Hour); r != 42 {
		t.Errorf("flat schedule at 17h = %g", r)
	}
	s := RateSchedule{
		Base:   100,
		Period: 10 * time.Second,
		Points: []RatePoint{{At: 0, Mul: 1}, {At: 5 * time.Second, Mul: 3}},
	}
	if r := s.At(0); r != 100 {
		t.Errorf("At(0) = %g, want 100", r)
	}
	if r := s.At(2500 * time.Millisecond); r != 200 {
		t.Errorf("At(2.5s) = %g, want 200 (midpoint of 1→3)", r)
	}
	if r := s.At(5 * time.Second); r != 300 {
		t.Errorf("At(5s) = %g, want 300", r)
	}
	// Wrap segment: 5s..10s interpolates 3 → 1 (the first point a
	// period later); 7.5s is the midpoint, and 12.5s wraps to 2.5s.
	if r := s.At(7500 * time.Millisecond); r != 200 {
		t.Errorf("At(7.5s) = %g, want 200", r)
	}
	if r := s.At(12500 * time.Millisecond); r != 200 {
		t.Errorf("At(12.5s) = %g, want 200 (wrap)", r)
	}
	if p := s.Peak(); p != 300 {
		t.Errorf("Peak = %g, want 300", p)
	}
	if p := Diurnal(1000, time.Minute).Peak(); p != 1150 {
		t.Errorf("diurnal peak = %g, want 1150", p)
	}
}

func TestRateScheduleValidate(t *testing.T) {
	bad := []RateSchedule{
		{Base: -5},
		{Base: 10, Points: []RatePoint{{At: 0, Mul: 1}}},                                               // no period
		{Base: 10, Period: time.Second, Points: []RatePoint{{At: 2 * time.Second, Mul: 1}}},            // offset past period
		{Base: 10, Period: time.Second, Points: []RatePoint{{At: 0, Mul: 1}, {At: 0, Mul: 2}}},         // not ascending
		{Base: 10, Period: time.Second, Points: []RatePoint{{At: 0, Mul: 1}, {At: 1, Mul: -2}}},        // negative mul
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid schedule accepted", i)
		}
	}
	if err := Diurnal(100, time.Minute).Validate(); err != nil {
		t.Errorf("diurnal schedule rejected: %v", err)
	}
}
