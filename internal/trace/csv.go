package trace

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
)

// SnapshotWriter streams one CSV row per control-interval snapshot:
// time, package power, limit, then four columns (MHz, IPS, W, parked) per
// application. Output is buffered — the daemon produces two snapshots'
// worth of text per second and an unbuffered writer would issue several
// syscalls per app per iteration — so callers must Flush before closing
// the underlying file.
type SnapshotWriter struct {
	w    io.Writer
	bw   *bufio.Writer
	apps []core.AppSpec
}

// NewSnapshotWriter wraps w in a buffer and writes the CSV header for the
// given application set.
func NewSnapshotWriter(w io.Writer, apps []core.AppSpec) *SnapshotWriter {
	sw := &SnapshotWriter{w: w, bw: bufio.NewWriter(w), apps: append([]core.AppSpec(nil), apps...)}
	fmt.Fprint(sw.bw, "time_s,pkg_w,limit_w")
	for _, a := range sw.apps {
		fmt.Fprintf(sw.bw, ",%s_c%d_mhz,%s_c%d_ips,%s_c%d_w,%s_c%d_parked",
			a.Name, a.Core, a.Name, a.Core, a.Name, a.Core, a.Name, a.Core)
	}
	fmt.Fprintln(sw.bw)
	return sw
}

// Observe appends one row. It matches the daemon's OnSnapshot signature.
func (sw *SnapshotWriter) Observe(s core.Snapshot) {
	fmt.Fprintf(sw.bw, "%.3f,%.3f,%.3f", s.Time.Seconds(), float64(s.PackagePower), float64(s.Limit))
	for _, a := range s.Apps {
		parked := 0
		if a.Parked {
			parked = 1
		}
		fmt.Fprintf(sw.bw, ",%.0f,%.4g,%.3f,%d", a.Freq.MHzF(), a.IPS, float64(a.Power), parked)
	}
	fmt.Fprintln(sw.bw)
}

// Flush drains the buffer to the underlying writer. Call it once after the
// run completes (and before closing the file).
func (sw *SnapshotWriter) Flush() error {
	return sw.bw.Flush()
}

// Close flushes the buffer and closes the underlying writer if it is an
// io.Closer. A flush failure takes precedence over a close failure: it
// means rows were lost, which matters more than a leaked descriptor.
func (sw *SnapshotWriter) Close() error {
	ferr := sw.bw.Flush()
	if c, ok := sw.w.(io.Closer); ok {
		if cerr := c.Close(); ferr == nil {
			ferr = cerr
		}
	}
	return ferr
}
