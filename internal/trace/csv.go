package trace

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
)

// SnapshotWriter streams one CSV row per control-interval snapshot:
// time, package power, limit, then four columns (MHz, IPS, W, parked) per
// application. Output is buffered — the daemon produces two snapshots'
// worth of text per second and an unbuffered writer would issue several
// syscalls per app per iteration — so callers must Flush before closing
// the underlying file.
type SnapshotWriter struct {
	bw   *bufio.Writer
	apps []core.AppSpec
}

// NewSnapshotWriter wraps w in a buffer and writes the CSV header for the
// given application set.
func NewSnapshotWriter(w io.Writer, apps []core.AppSpec) *SnapshotWriter {
	sw := &SnapshotWriter{bw: bufio.NewWriter(w), apps: append([]core.AppSpec(nil), apps...)}
	fmt.Fprint(sw.bw, "time_s,pkg_w,limit_w")
	for _, a := range sw.apps {
		fmt.Fprintf(sw.bw, ",%s_c%d_mhz,%s_c%d_ips,%s_c%d_w,%s_c%d_parked",
			a.Name, a.Core, a.Name, a.Core, a.Name, a.Core, a.Name, a.Core)
	}
	fmt.Fprintln(sw.bw)
	return sw
}

// Observe appends one row. It matches the daemon's OnSnapshot signature.
func (sw *SnapshotWriter) Observe(s core.Snapshot) {
	fmt.Fprintf(sw.bw, "%.3f,%.3f,%.3f", s.Time.Seconds(), float64(s.PackagePower), float64(s.Limit))
	for _, a := range s.Apps {
		parked := 0
		if a.Parked {
			parked = 1
		}
		fmt.Fprintf(sw.bw, ",%.0f,%.4g,%.3f,%d", a.Freq.MHzF(), a.IPS, float64(a.Power), parked)
	}
	fmt.Fprintln(sw.bw)
}

// Flush drains the buffer to the underlying writer. Call it once after the
// run completes (and before closing the file).
func (sw *SnapshotWriter) Flush() error {
	return sw.bw.Flush()
}
