package trace

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestRenderAlignment(t *testing.T) {
	tb := Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "## Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(out, "\n")
	// Header and rows must align: "value" column starts at the same offset.
	var idx []int
	for _, l := range lines {
		if strings.Contains(l, "1") && strings.Contains(l, "a") ||
			strings.Contains(l, "22") {
			idx = append(idx, strings.IndexAny(l, "12"))
		}
	}
	if len(idx) != 2 || idx[0] != idx[1] {
		t.Errorf("columns misaligned: %v\n%s", idx, out)
	}
}

func TestRenderCSVQuoting(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("x,y", "has \"quote\"")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"has \"\"quote\"\"\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if got := F(1.2345, 2); got != "1.23" {
		t.Errorf("F = %q", got)
	}
	if got := Hz(2200 * units.MHz); got != "2200" {
		t.Errorf("Hz = %q", got)
	}
	if got := W(49.999); got != "50.00" {
		t.Errorf("W = %q", got)
	}
	if got := Pct(0.755); got != "75.5%" {
		t.Errorf("Pct = %q", got)
	}
}
