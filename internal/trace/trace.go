// Package trace renders experiment results as aligned text tables and CSV,
// the formats the cmd tools and EXPERIMENTS.md use to report every figure
// and table of the paper.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/units"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteString("\n")
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (comma-separated, quoted when needed).
func (t *Table) RenderCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := io.WriteString(w, strings.Join(quoted, ",")+"\n")
		return err
	}
	if err := writeLine(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Hz formats a frequency in MHz, the unit the paper's figures use.
func Hz(f units.Hertz) string { return fmt.Sprintf("%.0f", f.MHzF()) }

// W formats watts with two decimals.
func W(w units.Watts) string { return fmt.Sprintf("%.2f", float64(w)) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
