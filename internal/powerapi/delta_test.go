package powerapi

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/units"
)

// stubBackend is a minimal settable backend: what a leaf looks like to
// the agent, without a daemon underneath.
type stubBackend struct {
	mu     sync.Mutex
	limit  units.Watts
	power  float64
	iters  int
	apps   []AppShare
	tier   *TierStatus
	energy *EnergyStatus
	fail   error

	// forwarded records ForwardGrant calls when forwarding is enabled.
	forward   bool
	forwarded []string
}

func (b *stubBackend) FillStatus(st *NodeStatus) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st.Policy = "stub"
	st.LimitWatts = float64(b.limit)
	st.PowerWatts = b.power
	st.MaxWatts = 100
	st.Iterations = b.iters
	st.Apps = append([]AppShare(nil), b.apps...)
	if b.tier != nil {
		t := *b.tier
		st.Tier = &t
	}
	st.Energy = b.energy
}

func (b *stubBackend) SetLimit(_ context.Context, w units.Watts) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fail != nil {
		return b.fail
	}
	b.limit = w
	return nil
}

func (b *stubBackend) ForwardGrant(_ context.Context, node string, g *LeaseGrant) (*LeaseAck, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.forward {
		return nil, &ErrorReply{Code: CodeUnknownNode, Message: "no such child " + node}
	}
	b.forwarded = append(b.forwarded, node)
	return &LeaseAck{ID: g.ID, Applied: true, LimitWatts: g.LimitWatts}, nil
}

func (b *stubBackend) set(power float64, iters int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.power, b.iters = power, iters
}

func newStubAgent(t *testing.T, name string) (*Agent, *stubBackend) {
	t.Helper()
	be := &stubBackend{limit: 50, power: 42, iters: 1}
	a, err := NewAgent(AgentConfig{Name: name, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a, be
}

// TestBackendAgentDefaults checks the generic fallback default: with no
// explicit fallback the agent adopts whatever limit the backend
// enforces at construction.
func TestBackendAgentDefaults(t *testing.T) {
	a, _ := newStubAgent(t, "n0")
	st := a.Status()
	if st.FallbackWatts != 50 {
		t.Fatalf("fallback = %v, want the backend's construction-time limit 50", st.FallbackWatts)
	}
	if st.Node != "n0" || st.Policy != "stub" || st.MaxWatts != 100 {
		t.Fatalf("status = %+v", st)
	}
	if _, err := NewAgent(AgentConfig{Name: "x"}); err == nil {
		t.Fatal("agent without daemon or backend was accepted")
	}
	if _, err := NewAgent(AgentConfig{Name: "x", Backend: &stubBackend{}, Daemon: nil}); err != nil {
		t.Fatalf("backend-only agent rejected: %v", err)
	}
}

// TestDiffStatusApplyRoundTrip drives the encoder and follower through
// a sequence of status mutations: every diff applied on top of the
// previous frame must reproduce the new frame exactly.
func TestDiffStatusApplyRoundTrip(t *testing.T) {
	frames := []*NodeStatus{
		{Node: "n0", Policy: "p", LimitWatts: 50, PowerWatts: 40, MaxWatts: 100, Iterations: 1},
		{Node: "n0", Policy: "p", LimitWatts: 50, PowerWatts: 44, MaxWatts: 100, Iterations: 2,
			Lease: &LeaseInfo{ID: 1, LimitWatts: 50, TTLMS: 1000, RemainingMS: 900},
			Apps:  []AppShare{{Name: "gcc", Core: 0, Shares: 90, Watts: 11}}},
		{Node: "n0", Policy: "q", LimitWatts: 30, PowerWatts: 29, MaxWatts: 100, Iterations: 3,
			Apps:   []AppShare{{Name: "gcc", Core: 0, Shares: 90, Watts: 8}},
			Energy: &EnergyStatus{TotalUJ: 12345, TotalJoules: 0.012, Apps: []AppEnergy{{Name: "gcc", TotalUJ: 12000}}}},
		{Node: "n0", Policy: "q", LimitWatts: 30, PowerWatts: 28, MaxWatts: 100, Iterations: 4, Draining: true,
			Tier: &TierStatus{Tier: "row", Children: 4, Nodes: 4, Depth: 1, BudgetWatts: 120}},
	}
	var f StatusFollower
	rev := uint64(1)
	if _, err := f.Apply(&StatusDelta{V: DeltaVersion, Node: "n0", Epoch: 9, Rev: rev, Full: frames[0]}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(frames); i++ {
		d := DiffStatus(frames[i-1], frames[i])
		d.Epoch, d.Base, d.Rev = 9, rev, rev+1
		rev++
		got, err := f.Apply(d)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, frames[i]) {
			t.Fatalf("frame %d:\n got %+v\nwant %+v", i, got, frames[i])
		}
	}
}

// TestStatusFollowerRefusals enumerates the frames a follower must
// refuse — and checks that after each refusal only a full frame
// restores it.
func TestStatusFollowerRefusals(t *testing.T) {
	base := &NodeStatus{Node: "n0", Policy: "p", LimitWatts: 50}
	full := func(rev uint64) *StatusDelta {
		return &StatusDelta{V: DeltaVersion, Node: "n0", Epoch: 9, Rev: rev, Full: base}
	}
	w := 51.0
	cases := []struct {
		name  string
		frame *StatusDelta
	}{
		{"foreign delta version", &StatusDelta{V: DeltaVersion + 1, Node: "n0", Epoch: 9, Rev: 2, Base: 1, LimitWatts: &w}},
		{"epoch change", &StatusDelta{V: DeltaVersion, Node: "n0", Epoch: 10, Rev: 2, Base: 1, LimitWatts: &w}},
		{"missed frame", &StatusDelta{V: DeltaVersion, Node: "n0", Epoch: 9, Rev: 5, Base: 3, LimitWatts: &w}},
		{"stale replay", &StatusDelta{V: DeltaVersion, Node: "n0", Epoch: 9, Rev: 1, Base: 1, LimitWatts: &w}},
		{"unknown clear field", &StatusDelta{V: DeltaVersion, Node: "n0", Epoch: 9, Rev: 2, Base: 1, Clear: []string{"future"}}},
		{"wrong node", &StatusDelta{V: DeltaVersion, Node: "n1", Epoch: 9, Rev: 2, Base: 1, LimitWatts: &w}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f StatusFollower
			if _, err := f.Apply(full(1)); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Apply(tc.frame); err == nil {
				t.Fatal("frame was applied")
			} else if _, ok := err.(*ResyncError); !ok {
				t.Fatalf("error %T, want *ResyncError", err)
			}
			if f.Synced() {
				t.Fatal("follower still synced after refusal")
			}
			if _, err := f.Apply(&StatusDelta{V: DeltaVersion, Node: "n0", Epoch: 9, Rev: 7, Base: 6, LimitWatts: &w}); err == nil {
				t.Fatal("delta applied while unsynchronized")
			}
			if _, err := f.Apply(full(8)); err != nil {
				t.Fatalf("full frame did not resync: %v", err)
			}
		})
	}
}

// TestFollowStatusOverHTTP runs the whole loop against a live agent:
// full resync on first contact, deltas on the steady path, and a
// transparent re-resync when a second follower steals the server-side
// baseline (the single-poller caveat, exercised deliberately).
func TestFollowStatusOverHTTP(t *testing.T) {
	a, be := newStubAgent(t, "n0")
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)

	var f StatusFollower
	st, err := c.FollowStatus(context.Background(), &f, MetricsNone)
	if err != nil {
		t.Fatal(err)
	}
	if st.PowerWatts != 42 || st.Iterations != 1 {
		t.Fatalf("first frame = %+v", st)
	}
	be.set(47.5, 2)
	if st, err = c.FollowStatus(context.Background(), &f, MetricsNone); err != nil {
		t.Fatal(err)
	}
	if st.PowerWatts != 47.5 || st.Iterations != 2 {
		t.Fatalf("delta frame = %+v", st)
	}

	// A second follower advances the agent's revision chain; the first
	// follower's next delta no longer applies and must resync.
	var thief StatusFollower
	if _, err := c.FollowStatus(context.Background(), &thief, MetricsNone); err != nil {
		t.Fatal(err)
	}
	be.set(33, 3)
	if st, err = c.FollowStatus(context.Background(), &f, MetricsNone); err != nil {
		t.Fatalf("resync after stolen baseline: %v", err)
	}
	if st.PowerWatts != 33 || st.Iterations != 3 {
		t.Fatalf("post-resync frame = %+v", st)
	}
}

// TestApplyBatchRouting checks a grant wave splits correctly: entries
// for the agent apply locally, entries for descendants go through the
// forwarding backend, and unroutable entries fail inside the ack
// without failing the wave.
func TestApplyBatchRouting(t *testing.T) {
	a, be := newStubAgent(t, "row0")
	be.forward = true
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)

	ack, err := c.LeaseBatch(context.Background(), &GrantBatch{
		Coordinator: "building",
		Grants: []NamedGrant{
			{Node: "row0", Grant: LeaseGrant{ID: 1, LimitWatts: 40, TTLMS: 60000}},
			{Node: "leaf3", Grant: LeaseGrant{ID: 2, LimitWatts: 10, TTLMS: 60000}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ack.Acks) != 2 {
		t.Fatalf("acks = %+v", ack.Acks)
	}
	if ack.Acks[0].Ack == nil || !ack.Acks[0].Ack.Applied {
		t.Fatalf("local entry not applied: %+v", ack.Acks[0])
	}
	if be.limit != 40 {
		t.Fatalf("local limit = %v, want 40", be.limit)
	}
	if ack.Acks[1].Ack == nil || len(be.forwarded) != 1 || be.forwarded[0] != "leaf3" {
		t.Fatalf("forwarded entry: ack %+v, forwarded %v", ack.Acks[1], be.forwarded)
	}
	st := a.Status()
	if st.Lease == nil || st.Lease.Coordinator != "building" {
		t.Fatalf("batch coordinator not adopted: %+v", st.Lease)
	}

	// Forwarding off: descendant entries fail per-entry, the wave and
	// its local entries still succeed.
	be.forward = false
	ack, err = c.LeaseBatch(context.Background(), &GrantBatch{Grants: []NamedGrant{
		{Node: "row0", Grant: LeaseGrant{ID: 3, LimitWatts: 35, TTLMS: 60000}},
		{Node: "leaf9", Grant: LeaseGrant{ID: 4, LimitWatts: 10, TTLMS: 60000}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Acks[0].Ack == nil || !ack.Acks[0].Ack.Applied {
		t.Fatalf("local entry: %+v", ack.Acks[0])
	}
	if ack.Acks[1].Err == nil {
		t.Fatalf("unroutable entry did not fail: %+v", ack.Acks[1])
	}
}

// captureDeltaEnvelopes records real frames an agent serves in delta
// mode — the fuzz corpus the issue asks for.
func captureDeltaEnvelopes(f *testing.F) [][]byte {
	f.Helper()
	be := &stubBackend{limit: 50, power: 42, iters: 1}
	a, err := NewAgent(AgentConfig{Name: "n0", Backend: be})
	if err != nil {
		f.Fatal(err)
	}
	defer a.Close()
	var out [][]byte
	add := func(d *StatusDelta) {
		data, err := MarshalRound(d, 7)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, data)
	}
	add(a.statusDelta(a.Status(), true)) // full resync frame
	be.set(44, 2)
	add(a.statusDelta(a.Status(), false)) // scalar delta
	if _, err := a.Grant(&LeaseGrant{ID: 1, LimitWatts: 40, TTLMS: 60_000}); err != nil {
		f.Fatal(err)
	}
	add(a.statusDelta(a.Status(), false)) // lease appears
	be.mu.Lock()
	be.tier = &TierStatus{Tier: "row", Children: 8, Nodes: 64, Depth: 1, BudgetWatts: 400}
	be.mu.Unlock()
	add(a.statusDelta(a.Status(), false)) // tier appears
	if _, err := a.SetDrain(true); err != nil {
		f.Fatal(err)
	}
	add(a.statusDelta(a.Status(), false)) // lease cleared, draining set
	return out
}

// FuzzStatusDelta hammers the delta-status decoder: any envelope, however
// mangled, must either be refused (after which only a full frame
// resyncs the follower) or be provably contiguous with the follower's
// state. It must never panic and never apply a stale or foreign frame.
func FuzzStatusDelta(f *testing.F) {
	for _, data := range captureDeltaEnvelopes(f) {
		f.Add(data)
	}
	mk := func(body string) []byte {
		return []byte(`{"v":1,"kind":"status_delta","body":` + body + `}`)
	}
	f.Add(mk(`{"v":1,"node":"n0","epoch":9,"rev":5,"base":5,"power_watts":1}`))  // stale
	f.Add(mk(`{"v":1,"node":"n0","epoch":9,"rev":2,"base":9,"power_watts":1}`))  // gap
	f.Add(mk(`{"v":2,"node":"n0","epoch":9,"rev":2,"base":1}`))                  // foreign version
	f.Add(mk(`{"v":1,"node":"n0","epoch":9,"rev":2,"base":1,"clear":["huh"]}`))  // unknown clear
	f.Add(mk(`{"v":1,"node":"n0","epoch":8,"rev":2,"base":1,"iterations":3}`))   // wrong epoch
	f.Add(mk(`{"v":1,"node":"n0","epoch":9,"rev":3,"base":2,"full":{"node":"n0"},"power_watts":4}`))
	f.Add([]byte(`{"v":1,"kind":"status_delta","body":{}}`))
	f.Add([]byte(`{"v":1,"kind":"status_delta","body":{"v":1,"bogus":3}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, msg, err := UnmarshalEnvelope(data)
		if err != nil {
			return
		}
		d, ok := msg.(*StatusDelta)
		if !ok {
			return
		}
		// Seed a follower that is, by construction, contiguous with the
		// frame's own (epoch, base) claim — the hardest state to fool.
		base := &NodeStatus{Node: d.Node, Policy: "p", LimitWatts: 10,
			Lease: &LeaseInfo{ID: 1, LimitWatts: 10, TTLMS: 500},
			Apps:  []AppShare{{Name: "a", Core: 0}}}
		var fl StatusFollower
		if _, err := fl.Apply(&StatusDelta{V: DeltaVersion, Node: d.Node, Epoch: d.Epoch, Rev: d.Base, Full: base}); err != nil {
			t.Fatalf("seeding follower: %v", err)
		}
		st, err := fl.Apply(d)
		if err != nil {
			if _, ok := err.(*ResyncError); !ok {
				t.Fatalf("refusal error %T, want *ResyncError", err)
			}
			if fl.Synced() {
				t.Fatal("follower stayed synced after refusing a frame")
			}
			// A delta must now be refused, and a full frame accepted.
			w := 1.0
			if _, err := fl.Apply(&StatusDelta{V: DeltaVersion, Node: d.Node, Epoch: d.Epoch, Rev: d.Rev + 1, Base: d.Rev, PowerWatts: &w}); err == nil {
				t.Fatal("delta applied while unsynchronized")
			}
			if _, err := fl.Apply(&StatusDelta{V: DeltaVersion, Node: d.Node, Epoch: d.Epoch, Rev: d.Rev + 2, Full: base}); err != nil {
				t.Fatalf("full frame did not resync: %v", err)
			}
			return
		}
		// The frame applied: it must have been provably contiguous.
		if d.V != DeltaVersion {
			t.Fatalf("applied foreign delta version %d", d.V)
		}
		if d.Full == nil && d.Rev <= d.Base {
			t.Fatalf("applied stale delta rev %d over base %d", d.Rev, d.Base)
		}
		if st == nil {
			t.Fatal("applied frame returned nil status")
		}
		// And a replay of the very same frame must now be refused.
		if d.Full == nil {
			if _, err := fl.Apply(d); err == nil {
				t.Fatal("replayed delta applied twice")
			}
		}
	})
}
