package powerapi

import (
	"fmt"
	"maps"
	"reflect"
	"slices"
	"sync"
)

// DeltaVersion is the version of the delta-encoded status format. A
// receiver that sees any other value treats the frame as undecodable
// and resynchronizes with a full frame.
const DeltaVersion = 1

// TierStatus rides a NodeStatus when the "node" is really a mid-tier
// coordinator (a row or building) presenting its subtree as one
// synthetic node. It is what lets a parent — and powerctl tree — tell
// a 64-leaf row from a single machine.
type TierStatus struct {
	// Tier is the level label, e.g. "row" or "building".
	Tier string `json:"tier,omitempty"`
	// Children is the number of direct children this tier coordinates.
	Children int `json:"children"`
	// Nodes is the number of leaf nodes in the whole subtree.
	Nodes int `json:"nodes"`
	// Depth is the number of coordinator levels at or below this tier
	// (a row over leaves is 1, a building over rows is 2).
	Depth int `json:"depth"`
	// Quarantined counts direct children currently quarantined.
	Quarantined int `json:"quarantined,omitempty"`
	// BudgetWatts is the budget the tier currently cascades downward —
	// its own granted lease, or its configured budget when standalone.
	BudgetWatts float64 `json:"budget_watts,omitempty"`
}

// StatusDelta is a delta-encoded NodeStatus: only the fields that
// changed since the revision named by Base travel. It exists because a
// thousand-node fleet polls status every round, and most of a frame
// (policy, max watts, app specs, fallback) is static round to round.
//
// The encoding is stateful per server: Rev increments on every frame
// served and Epoch identifies the server incarnation, so a receiver
// can always tell a frame it must not apply (missed revision, restarted
// server, foreign version) from one it can. A frame with Full set is a
// resynchronization point carrying the complete status.
type StatusDelta struct {
	// V is the delta-format version (DeltaVersion).
	V    int    `json:"v"`
	Node string `json:"node"`

	// Epoch identifies the encoder incarnation; it changes when the
	// agent restarts, which invalidates any delta chain built against
	// the previous incarnation.
	Epoch uint64 `json:"epoch"`
	// Rev is this frame's revision. Base is the revision this delta
	// applies on top of; a receiver whose current revision is not Base
	// must discard the frame and resync.
	Rev  uint64 `json:"rev"`
	Base uint64 `json:"base,omitempty"`

	// Full, when set, is a complete status frame (a resync point); all
	// the delta fields below are empty.
	Full *NodeStatus `json:"full,omitempty"`

	// Changed scalar fields; nil means unchanged.
	Policy        *string  `json:"policy,omitempty"`
	LimitWatts    *float64 `json:"limit_watts,omitempty"`
	PowerWatts    *float64 `json:"power_watts,omitempty"`
	MaxWatts      *float64 `json:"max_watts,omitempty"`
	FallbackWatts *float64 `json:"fallback_watts,omitempty"`
	Iterations    *int     `json:"iterations,omitempty"`
	Draining      *bool    `json:"draining,omitempty"`

	// Composite fields are replaced wholesale when present; a field
	// that became empty is named in Clear instead.
	Lease  *LeaseInfo    `json:"lease,omitempty"`
	Apps   []AppShare    `json:"apps,omitempty"`
	Energy *EnergyStatus `json:"energy,omitempty"`
	Tier   *TierStatus   `json:"tier,omitempty"`

	// Clear names composite fields ("lease", "apps", "energy", "tier")
	// that were present at Base and are gone at Rev. An unrecognized
	// name is a decode error (and so a resync), not a silent skip.
	Clear []string `json:"clear,omitempty"`

	// Metrics snapshots are already delta-encoded by the metrics
	// piggyback (MetricsRev); they pass through per-frame, not
	// accumulated into the follower's state.
	MetricsRev uint64             `json:"metrics_rev,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// cloneStatus deep-copies a status frame so follower state can never
// alias caller-visible memory.
func cloneStatus(st *NodeStatus) *NodeStatus {
	if st == nil {
		return nil
	}
	out := *st
	out.Apps = slices.Clone(st.Apps)
	if st.Lease != nil {
		l := *st.Lease
		out.Lease = &l
	}
	if st.Energy != nil {
		e := *st.Energy
		e.Apps = slices.Clone(st.Energy.Apps)
		e.Anomalies = maps.Clone(st.Energy.Anomalies)
		out.Energy = &e
	}
	if st.Tier != nil {
		t := *st.Tier
		out.Tier = &t
	}
	out.Metrics = maps.Clone(st.Metrics)
	return &out
}

// DiffStatus computes the delta that turns old into new. Identity
// (Node), revision bookkeeping, and metrics passthrough are the
// caller's to fill in; only the changed-field payload is produced here.
func DiffStatus(old, new *NodeStatus) *StatusDelta {
	d := &StatusDelta{V: DeltaVersion, Node: new.Node}
	if new.Policy != old.Policy {
		d.Policy = &new.Policy
	}
	if new.LimitWatts != old.LimitWatts {
		d.LimitWatts = &new.LimitWatts
	}
	if new.PowerWatts != old.PowerWatts {
		d.PowerWatts = &new.PowerWatts
	}
	if new.MaxWatts != old.MaxWatts {
		d.MaxWatts = &new.MaxWatts
	}
	if new.FallbackWatts != old.FallbackWatts {
		d.FallbackWatts = &new.FallbackWatts
	}
	if new.Iterations != old.Iterations {
		d.Iterations = &new.Iterations
	}
	if new.Draining != old.Draining {
		d.Draining = &new.Draining
	}
	switch {
	case new.Lease == nil && old.Lease != nil:
		d.Clear = append(d.Clear, "lease")
	case new.Lease != nil && (old.Lease == nil || *new.Lease != *old.Lease):
		d.Lease = new.Lease
	}
	switch {
	case len(new.Apps) == 0 && len(old.Apps) != 0:
		d.Clear = append(d.Clear, "apps")
	case len(new.Apps) != 0 && !slices.Equal(new.Apps, old.Apps):
		d.Apps = new.Apps
	}
	switch {
	case new.Energy == nil && old.Energy != nil:
		d.Clear = append(d.Clear, "energy")
	case new.Energy != nil && (old.Energy == nil || !reflect.DeepEqual(new.Energy, old.Energy)):
		d.Energy = new.Energy
	}
	switch {
	case new.Tier == nil && old.Tier != nil:
		d.Clear = append(d.Clear, "tier")
	case new.Tier != nil && (old.Tier == nil || *new.Tier != *old.Tier):
		d.Tier = new.Tier
	}
	return d
}

// ResyncError reports a delta frame that must not be applied; the
// receiver discards its state and requests a full frame.
type ResyncError struct {
	Reason string
}

func (e *ResyncError) Error() string {
	return fmt.Sprintf("powerapi: status delta needs resync: %s", e.Reason)
}

// StatusFollower reconstructs full status frames from a delta stream.
// It refuses — with a *ResyncError — any frame it cannot prove
// contiguous: wrong delta version, unknown epoch, a Base that is not
// the follower's current revision, or a revision that does not move
// forward (a replayed or stale delta). After any refusal the follower
// is unsynchronized and only a Full frame restores it, so one lost
// response can never smear a stale field into later frames.
type StatusFollower struct {
	mu     sync.Mutex
	synced bool
	epoch  uint64
	rev    uint64
	cur    *NodeStatus
}

// Synced reports whether the follower can apply incremental frames;
// when false the next request must ask for a resync (full) frame.
func (f *StatusFollower) Synced() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.synced
}

// Reset forgets all state, forcing the next frame to be a full resync.
func (f *StatusFollower) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.synced = false
	f.cur = nil
}

// Apply folds one frame into the follower and returns the resulting
// complete status (a copy the caller owns). Metrics fields on the
// returned status come from this frame alone — they are the metrics
// piggyback's own delta stream, not follower state.
func (f *StatusFollower) Apply(d *StatusDelta) (*NodeStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fail := func(reason string) (*NodeStatus, error) {
		f.synced = false
		f.cur = nil
		return nil, &ResyncError{Reason: reason}
	}
	if d == nil {
		return fail("nil frame")
	}
	if d.V != DeltaVersion {
		return fail(fmt.Sprintf("delta version %d, want %d", d.V, DeltaVersion))
	}
	if d.Full != nil {
		f.synced = true
		f.epoch = d.Epoch
		f.rev = d.Rev
		f.cur = cloneStatus(d.Full)
		f.cur.Metrics, f.cur.MetricsRev = nil, 0
		out := cloneStatus(d.Full)
		return out, nil
	}
	if !f.synced {
		return fail("delta frame while unsynchronized")
	}
	if d.Epoch != f.epoch {
		return fail(fmt.Sprintf("epoch %d, following %d (server restarted)", d.Epoch, f.epoch))
	}
	if d.Base != f.rev {
		return fail(fmt.Sprintf("base rev %d, following %d (missed a frame)", d.Base, f.rev))
	}
	if d.Rev <= d.Base {
		return fail(fmt.Sprintf("rev %d does not advance base %d (stale delta)", d.Rev, d.Base))
	}
	if d.Node != "" && d.Node != f.cur.Node {
		return fail(fmt.Sprintf("node %q, following %q", d.Node, f.cur.Node))
	}
	st := f.cur
	if d.Policy != nil {
		st.Policy = *d.Policy
	}
	if d.LimitWatts != nil {
		st.LimitWatts = *d.LimitWatts
	}
	if d.PowerWatts != nil {
		st.PowerWatts = *d.PowerWatts
	}
	if d.MaxWatts != nil {
		st.MaxWatts = *d.MaxWatts
	}
	if d.FallbackWatts != nil {
		st.FallbackWatts = *d.FallbackWatts
	}
	if d.Iterations != nil {
		st.Iterations = *d.Iterations
	}
	if d.Draining != nil {
		st.Draining = *d.Draining
	}
	for _, name := range d.Clear {
		switch name {
		case "lease":
			st.Lease = nil
		case "apps":
			st.Apps = nil
		case "energy":
			st.Energy = nil
		case "tier":
			st.Tier = nil
		default:
			return fail(fmt.Sprintf("unknown clear field %q", name))
		}
	}
	if d.Lease != nil {
		l := *d.Lease
		st.Lease = &l
	}
	if d.Apps != nil {
		st.Apps = slices.Clone(d.Apps)
	}
	if d.Energy != nil {
		e := *d.Energy
		e.Apps = slices.Clone(d.Energy.Apps)
		e.Anomalies = maps.Clone(d.Energy.Anomalies)
		st.Energy = &e
	}
	if d.Tier != nil {
		t := *d.Tier
		st.Tier = &t
	}
	f.rev = d.Rev
	out := cloneStatus(st)
	out.MetricsRev = d.MetricsRev
	out.Metrics = maps.Clone(d.Metrics)
	return out, nil
}

// GrantBatch carries one grant wave — many leases in one message — so
// a tier cascading budget to children multiplexed behind one endpoint
// pays one round trip, not one per child.
type GrantBatch struct {
	Coordinator string       `json:"coordinator,omitempty"`
	Grants      []NamedGrant `json:"grants"`
}

// NamedGrant addresses one lease inside a batch to a node by name.
type NamedGrant struct {
	Node  string     `json:"node"`
	Grant LeaseGrant `json:"grant"`
}

// GrantBatchAck answers a batch with one result per entry, in order.
// Per-entry failures (a draining child, a stale ID) ride inside the
// ack; only transport-level problems fail the whole batch.
type GrantBatchAck struct {
	Acks []NamedAck `json:"acks"`
}

// NamedAck is one entry's outcome: exactly one of Ack and Err is set.
type NamedAck struct {
	Node string      `json:"node"`
	Ack  *LeaseAck   `json:"ack,omitempty"`
	Err  *ErrorReply `json:"error,omitempty"`
}
