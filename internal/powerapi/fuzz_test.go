package powerapi

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalMessage hammers the wire codec: any input must either be
// rejected with an error or decode into a message that survives a
// Marshal/Unmarshal round trip unchanged. Seeded with one envelope of
// every registered kind plus assorted malformed frames.
func FuzzUnmarshalMessage(f *testing.F) {
	for _, msg := range sampleMessages() {
		data, err := Marshal(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, msg := range sampleMessages()[:3] {
		data, err := MarshalRound(msg, 77)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"v":1,"kind":"drain","body":{}}`))
	f.Add([]byte(`{"v":2,"kind":"drain","body":{"on":true}}`))
	f.Add([]byte(`{"v":1,"kind":"bogus","body":{}}`))
	f.Add([]byte(`{"v":1,"kind":"status","body":{"node":"n","apps":[]}}`))
	f.Add([]byte(`{"v":1,"kind":"drain","body":{"on":true},"round":12345}`))
	f.Add([]byte(`{"v":1,"kind":"status","body":{"node":"n","metrics_rev":3,"metrics":{"x":1}},"round":9}`))
	f.Add([]byte(`{"v":1,"kind":"drain","body":{"on":true},"future_field":{"deep":[1,2]}}`))
	f.Add([]byte(`{"v":1,"kind":"heartbeat","body":{"node":"n"},"round":-1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, msg, err := UnmarshalEnvelope(data)
		if err != nil {
			return
		}
		kind := env.Kind
		if _, ok := kinds[kind]; !ok {
			t.Fatalf("decoded unregistered kind %q", kind)
		}
		re, err := MarshalRound(msg, env.Round)
		if err != nil {
			t.Fatalf("decoded %s does not re-marshal: %v", kind, err)
		}
		env2, msg2, err := UnmarshalEnvelope(re)
		if err != nil {
			t.Fatalf("re-marshaled %s does not decode: %v", kind, err)
		}
		if env2.Kind != kind {
			t.Fatalf("kind changed across round trip: %s -> %s", kind, env2.Kind)
		}
		if env2.Round != env.Round {
			t.Fatalf("round changed across round trip: %d -> %d", env.Round, env2.Round)
		}
		// One Marshal canonicalises (omitempty may drop empty fields);
		// after that, the bytes must be a fixed point.
		re2, err := MarshalRound(msg2, env2.Round)
		if err != nil {
			t.Fatalf("second marshal of %s: %v", kind, err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("%s not stable across round trip:\n first %s\nsecond %s", kind, re, re2)
		}
	})
}
