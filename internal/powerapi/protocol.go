// Package powerapi is the wire protocol of the networked power control
// plane: a small, versioned JSON-over-HTTP vocabulary through which a room
// coordinator (cmd/powercoord) leases slices of a power budget to
// per-node power-delivery daemons, and operators (cmd/powerctl) inspect
// and live-reconfigure a running daemon without restarting it.
//
// Every message travels inside an Envelope{v, kind, body}; unknown body
// fields, unknown kinds, and version mismatches are rejected loudly, so
// protocol drift between coordinator and node surfaces as an error
// rather than a silently-misread field. The envelope itself is the
// versioned extension point: decoders tolerate unknown envelope fields,
// so additive envelope metadata (like the round ID below) reaches new
// peers while old ones ignore it. The node side (Agent) mounts under
// /v1/power/ on the daemon's existing observability server; the
// coordinator side mounts under /v1/cluster/.
//
// The budget-safety contract is the lease: every grant carries a TTL and a
// fallback cap, and a node that stops hearing renewals reverts to the
// fallback on its own — so a partitioned node can never hold a stale,
// oversized share of the room budget (the coordinator sizes fallbacks so
// that all nodes at fallback sum to at most the budget).
package powerapi

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Version is the protocol version both sides must speak.
const Version = 1

// PathPrefix is where the node-side Agent mounts its endpoints.
const PathPrefix = "/v1/power/"

// ClusterPrefix is where the coordinator mounts its endpoints.
const ClusterPrefix = "/v1/cluster/"

// ContentType is the media type of every request and response body.
const ContentType = "application/json"

// Envelope frames every message on the wire.
type Envelope struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`

	// Round is the coordinator-assigned control-round ID the message
	// belongs to, zero outside a round. It rides the envelope (not the
	// body) so every message kind carries it without a schema change,
	// and old decoders — which tolerate unknown envelope fields —
	// simply ignore it.
	Round uint64 `json:"round,omitempty"`
}

// Message kinds. The registry below maps each to its body type.
const (
	KindStatus         = "status"
	KindStatusDelta    = "status_delta"
	KindLeaseGrant     = "lease_grant"
	KindLeaseAck       = "lease_ack"
	KindGrantBatch     = "grant_batch"
	KindGrantBatchAck  = "grant_batch_ack"
	KindReconfigure    = "reconfigure"
	KindReconfigureAck = "reconfigure_ack"
	KindDrain          = "drain"
	KindDrainAck       = "drain_ack"
	KindRegister       = "register"
	KindRegisterAck    = "register_ack"
	KindHeartbeat      = "heartbeat"
	KindHeartbeatAck   = "heartbeat_ack"
	KindError          = "error"
)

// NodeStatus reports one daemon's control-plane view: what it enforces,
// what it measures, and the lease it holds, if any.
type NodeStatus struct {
	Node          string     `json:"node"`
	Policy        string     `json:"policy"`
	LimitWatts    float64    `json:"limit_watts"`
	PowerWatts    float64    `json:"power_watts"`
	MaxWatts      float64    `json:"max_watts"`
	FallbackWatts float64    `json:"fallback_watts"`
	Iterations    int        `json:"iterations"`
	Draining      bool       `json:"draining,omitempty"`
	Lease         *LeaseInfo `json:"lease,omitempty"`
	Apps          []AppShare `json:"apps,omitempty"`

	// MetricsRev and Metrics carry an optional metrics snapshot for
	// fleet aggregation, requested via ?metrics=full|delta on the
	// status endpoint. A delta holds only series whose value changed
	// since the previous snapshot this agent served; MetricsRev
	// increments per snapshot so a receiver can spot missed deltas.
	MetricsRev uint64             `json:"metrics_rev,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`

	// Energy carries the node's energy-ledger summary when the daemon
	// runs one, so the coordinator can roll up fleet-wide joules, cost,
	// and anomalies from the status poll it already makes.
	Energy *EnergyStatus `json:"energy,omitempty"`

	// SLO carries the node's per-service latency/SLO view when the
	// daemon feeds service telemetry, so the coordinator can roll up
	// fleet-wide SLO attainment from the status poll it already makes.
	SLO *SLOStatus `json:"slo,omitempty"`

	// Tier is set when this "node" is a mid-tier coordinator (a row or
	// building) reporting its whole subtree as one synthetic node.
	Tier *TierStatus `json:"tier,omitempty"`
}

// SLOStatus is a node's per-service latency and SLO-attainment view.
type SLOStatus struct {
	Services []ServiceSLOStatus `json:"services"`
}

// ServiceSLOStatus is one latency service's tail-latency telemetry over
// its sliding window, plus the p99 objective it is held to (0 when none).
type ServiceSLOStatus struct {
	Name     string  `json:"name"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	TargetMS float64 `json:"target_ms,omitempty"`
	Rate     float64 `json:"rate"`
	QueueLen int     `json:"queue_len"`
	Dropped  uint64  `json:"dropped,omitempty"`
	Timeouts uint64  `json:"timeouts,omitempty"`
	Met      bool    `json:"met"`
}

// EnergyStatus is a node's cumulative energy-ledger summary. The *UJ
// fields are exact integer microjoules (the ledger's unit of account, so
// cross-node sums and replay checks stay bit-identical); the float fields
// are derived conveniences.
type EnergyStatus struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Intervals      uint64  `json:"intervals"`
	OverIntervals  uint64  `json:"over_intervals"`

	TotalUJ        uint64 `json:"total_uj"`
	UnattributedUJ uint64 `json:"unattributed_uj"`
	ExcludedUJ     uint64 `json:"excluded_uj"`
	OvershootUJ    uint64 `json:"overshoot_uj"`

	TotalJoules     float64 `json:"total_joules"`
	OvershootJoules float64 `json:"overshoot_joules"`
	CostUSD         float64 `json:"cost_usd"`
	CarbonGrams     float64 `json:"carbon_grams"`

	Apps      []AppEnergy       `json:"apps,omitempty"`
	Anomalies map[string]uint64 `json:"anomalies,omitempty"`
}

// AppEnergy is one application's share of a node's attributed energy.
type AppEnergy struct {
	Name       string  `json:"name"`
	Core       int     `json:"core"`
	TotalUJ    uint64  `json:"total_uj"`
	Joules     float64 `json:"joules"`
	EnergyFrac float64 `json:"energy_frac"`
	ShareFrac  float64 `json:"share_frac"`
}

// LeaseInfo describes the lease a node currently holds.
type LeaseInfo struct {
	ID          uint64  `json:"id"`
	Coordinator string  `json:"coordinator,omitempty"`
	LimitWatts  float64 `json:"limit_watts"`
	TTLMS       int64   `json:"ttl_ms"`
	RemainingMS int64   `json:"remaining_ms"`
}

// AppShare is one managed application as the control plane sees it.
type AppShare struct {
	Name     string `json:"name"`
	Core     int    `json:"core"`
	Shares   int    `json:"shares,omitempty"`
	Priority string `json:"priority,omitempty"`
	// Watts is the application's observed core power at the node's
	// last control interval — the input to fleet per-app rollups.
	Watts float64 `json:"watts,omitempty"`
}

// LeaseGrant leases part of the room budget to a node: enforce Limit now,
// revert to Fallback if no renewal arrives within TTL.
type LeaseGrant struct {
	ID            uint64  `json:"id"`
	Coordinator   string  `json:"coordinator,omitempty"`
	LimitWatts    float64 `json:"limit_watts"`
	TTLMS         int64   `json:"ttl_ms"`
	FallbackWatts float64 `json:"fallback_watts,omitempty"`
}

// LeaseAck is the node's answer to a grant.
type LeaseAck struct {
	ID         uint64  `json:"id"`
	Applied    bool    `json:"applied"`
	LimitWatts float64 `json:"limit_watts"`
	Reason     string  `json:"reason,omitempty"`
}

// Reconfigure asks a running daemon to change policy, shares, priorities,
// and/or power limit in place. Zero-valued fields keep the current
// setting; Shares and Priorities address applications by name.
type Reconfigure struct {
	Policy     string            `json:"policy,omitempty"`
	LimitWatts float64           `json:"limit_watts,omitempty"`
	Shares     map[string]int    `json:"shares,omitempty"`
	Priorities map[string]string `json:"priorities,omitempty"`
}

// ReconfigureAck reports the applied configuration.
type ReconfigureAck struct {
	Policy     string  `json:"policy"`
	LimitWatts float64 `json:"limit_watts"`
}

// Drain toggles drain mode: a draining node refuses new leases, drops to
// its fallback cap, and waits to be taken out of the room.
type Drain struct {
	On bool `json:"on"`
}

// DrainAck reports the node's drain state after the toggle.
type DrainAck struct {
	Draining bool `json:"draining"`
}

// Register announces a node to the coordinator.
type Register struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
}

// RegisterAck confirms registration.
type RegisterAck struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// Heartbeat keeps a registration alive.
type Heartbeat struct {
	Node string `json:"node"`
}

// HeartbeatAck confirms the coordinator still knows the node.
type HeartbeatAck struct {
	Known bool `json:"known"`
}

// ErrorReply carries a structured protocol-level failure.
type ErrorReply struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes used in ErrorReply.
const (
	CodeBadRequest  = "bad_request"
	CodeDraining    = "draining"
	CodeStaleLease  = "stale_lease"
	CodeInvalid     = "invalid"
	CodeUnknownNode = "unknown_node"
	CodeInternal    = "internal"
)

func (e *ErrorReply) Error() string {
	return fmt.Sprintf("powerapi: %s: %s", e.Code, e.Message)
}

// kinds maps each message kind to a constructor for its body type — the
// single registry Marshal, Unmarshal, and the fuzz target all share.
var kinds = map[string]func() any{
	KindStatus:         func() any { return &NodeStatus{} },
	KindStatusDelta:    func() any { return &StatusDelta{} },
	KindLeaseGrant:     func() any { return &LeaseGrant{} },
	KindLeaseAck:       func() any { return &LeaseAck{} },
	KindGrantBatch:     func() any { return &GrantBatch{} },
	KindGrantBatchAck:  func() any { return &GrantBatchAck{} },
	KindReconfigure:    func() any { return &Reconfigure{} },
	KindReconfigureAck: func() any { return &ReconfigureAck{} },
	KindDrain:          func() any { return &Drain{} },
	KindDrainAck:       func() any { return &DrainAck{} },
	KindRegister:       func() any { return &Register{} },
	KindRegisterAck:    func() any { return &RegisterAck{} },
	KindHeartbeat:      func() any { return &Heartbeat{} },
	KindHeartbeatAck:   func() any { return &HeartbeatAck{} },
	KindError:          func() any { return &ErrorReply{} },
}

// KindOf reports the wire kind for a message body, or "" for a type that
// is not part of the protocol.
func KindOf(msg any) string {
	switch msg.(type) {
	case *NodeStatus:
		return KindStatus
	case *StatusDelta:
		return KindStatusDelta
	case *LeaseGrant:
		return KindLeaseGrant
	case *LeaseAck:
		return KindLeaseAck
	case *GrantBatch:
		return KindGrantBatch
	case *GrantBatchAck:
		return KindGrantBatchAck
	case *Reconfigure:
		return KindReconfigure
	case *ReconfigureAck:
		return KindReconfigureAck
	case *Drain:
		return KindDrain
	case *DrainAck:
		return KindDrainAck
	case *Register:
		return KindRegister
	case *RegisterAck:
		return KindRegisterAck
	case *Heartbeat:
		return KindHeartbeat
	case *HeartbeatAck:
		return KindHeartbeatAck
	case *ErrorReply:
		return KindError
	}
	return ""
}

// Marshal frames a message body in a versioned envelope.
func Marshal(msg any) ([]byte, error) {
	return MarshalRound(msg, 0)
}

// MarshalRound frames a message body in a versioned envelope stamped
// with a control-round ID (zero omits the stamp).
func MarshalRound(msg any, round uint64) ([]byte, error) {
	kind := KindOf(msg)
	if kind == "" {
		return nil, fmt.Errorf("powerapi: %T is not a protocol message", msg)
	}
	body, err := json.Marshal(msg)
	if err != nil {
		return nil, fmt.Errorf("powerapi: marshal %s: %w", kind, err)
	}
	return json.Marshal(Envelope{V: Version, Kind: kind, Body: body, Round: round})
}

// Unmarshal parses an envelope and its body. Unknown body fields,
// unknown kinds, and foreign versions are errors; unknown envelope
// fields are tolerated (the envelope is the forward-compatible
// extension point).
func Unmarshal(data []byte) (string, any, error) {
	env, msg, err := UnmarshalEnvelope(data)
	return env.Kind, msg, err
}

// UnmarshalEnvelope is Unmarshal exposing the decoded envelope, for
// callers that need its metadata (the round ID) as well as the body.
func UnmarshalEnvelope(data []byte) (Envelope, any, error) {
	var env Envelope
	// The envelope decodes leniently so additive fields from newer
	// peers pass through old decoders; bodies stay strict below.
	if err := json.Unmarshal(data, &env); err != nil {
		return Envelope{}, nil, fmt.Errorf("powerapi: envelope: %w", err)
	}
	if env.V != Version {
		return env, nil, fmt.Errorf("powerapi: version %d, want %d", env.V, Version)
	}
	mk, ok := kinds[env.Kind]
	if !ok {
		return env, nil, fmt.Errorf("powerapi: unknown kind %q", env.Kind)
	}
	msg := mk()
	bdec := json.NewDecoder(bytes.NewReader(env.Body))
	bdec.DisallowUnknownFields()
	if err := bdec.Decode(msg); err != nil {
		return env, nil, fmt.Errorf("powerapi: %s body: %w", env.Kind, err)
	}
	return env, msg, nil
}

// UnmarshalAs parses an envelope expecting one specific kind; an error
// envelope decodes into its ErrorReply instead.
func UnmarshalAs(data []byte, want string) (any, error) {
	kind, msg, err := Unmarshal(data)
	if err != nil {
		return nil, err
	}
	if kind == KindError {
		return nil, msg.(*ErrorReply)
	}
	if kind != want {
		return nil, fmt.Errorf("powerapi: got %s, want %s", kind, want)
	}
	return msg, nil
}
