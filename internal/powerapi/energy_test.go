package powerapi_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/powerapi"
	"repro/internal/sim"
	"repro/internal/workload"

	"net/http/httptest"
)

// TestStatusCarriesEnergy proves the piggyback: when the agent is built
// with a ledger, every status reply carries the node's energy summary —
// the coordinator learns fleet energy without a second RPC — and the
// wire numbers equal the ledger's own, microjoule for microjoule.
func TestStatusCarriesEnergy(t *testing.T) {
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	apps := []string{"gcc", "cam4"}
	specs := make([]core.AppSpec, len(apps))
	for i, a := range apps {
		if err := m.Pin(workload.NewInstance(workload.MustByName(a)), i); err != nil {
			t.Fatal(err)
		}
		specs[i] = core.AppSpec{Name: a, Core: i, Shares: 50}
	}
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	led, err := ledger.New(ledger.Config{Chip: chip, Apps: specs})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 50, Ledger: led,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	agent, err := powerapi.NewAgent(powerapi.AgentConfig{
		Name: "n0", Daemon: d, PolicyName: "frequency", Ledger: led,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)
	srv := httptest.NewServer(obs.New(nil, nil, obs.DaemonStatusFunc(d),
		obs.WithHandler(powerapi.PathPrefix, agent.Handler())).Handler())
	t.Cleanup(srv.Close)

	m.Run(5 * time.Second)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}

	st, err := powerapi.NewClient(srv.URL).Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Energy == nil {
		t.Fatal("status carries no energy summary despite a configured ledger")
	}
	sum := led.Summarize()
	e := st.Energy
	if e.TotalUJ != sum.TotalUJ || e.UnattributedUJ != sum.UnattributedUJ ||
		e.ExcludedUJ != sum.ExcludedUJ || e.OvershootUJ != sum.OvershootUJ {
		t.Errorf("wire accounts diverge from ledger: %+v vs %+v", e, sum)
	}
	if e.Intervals != sum.Intervals || e.Intervals == 0 {
		t.Errorf("intervals = %d, ledger %d", e.Intervals, sum.Intervals)
	}
	if len(e.Apps) != len(sum.Apps) {
		t.Fatalf("wire apps = %d, ledger %d", len(e.Apps), len(sum.Apps))
	}
	for i := range e.Apps {
		if e.Apps[i].Name != sum.Apps[i].Name || e.Apps[i].TotalUJ != sum.Apps[i].TotalUJ {
			t.Errorf("app %d: wire %+v, ledger %+v", i, e.Apps[i], sum.Apps[i])
		}
	}
	if e.CostUSD <= 0 || e.TotalJoules <= 0 {
		t.Errorf("cost/joules not populated: %+v", e)
	}
}

// Without a ledger the status reply omits the energy block entirely.
func TestStatusOmitsEnergyWithoutLedger(t *testing.T) {
	n := newNode(t, "n0", 50, 0, nil, 0)
	n.m.Run(time.Second)
	st, err := powerapi.NewClient(n.srv.URL).Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Energy != nil {
		t.Errorf("unsolicited energy block: %+v", st.Energy)
	}
}
