package powerapi

import (
	"context"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/flight"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/opconfig"
	"repro/internal/tracing"
	"repro/internal/units"
)

// maxBody bounds request bodies; control-plane messages are tiny.
const maxBody = 1 << 20

// Backend is what an Agent fronts on the control plane: a leaf
// power-delivery daemon, or — in the datacenter hierarchy — a mid-tier
// coordinator presenting its whole subtree as one synthetic node.
type Backend interface {
	// FillStatus populates the backend-derived fields of a status frame:
	// policy, limit, power, max, iterations, apps, energy, tier. The
	// agent fills Node and the lease fields itself.
	FillStatus(st *NodeStatus)

	// SetLimit applies a power cap: a granted lease's limit, or the
	// fallback cap on expiry/drain. A mid-tier backend cascades the
	// budget to its children and, for a shrink, must not return success
	// until the caps it still holds fit under the new limit — that is
	// what makes Σ granted ≤ budget recursive. ctx carries the
	// coordinator round ID for cascade tracing; lease expiry and drain
	// pass a background context.
	SetLimit(ctx context.Context, limit units.Watts) error
}

// FallbackEnforcer is implemented by backends that enforce an expiry
// or drain fallback differently from a granted cap. A lease grant may
// be refused; an expiry cannot — the budget is already gone one level
// up. A mid-tier backend therefore clamps its cascaded budget
// unconditionally: reachable children shrink in the same call, and
// unreachable ones hold their old caps only until their own leases
// lapse, which is what bounds the fallback cascade to one extra TTL
// per tier. Leaf backends enforce a cap directly and don't need this.
type FallbackEnforcer interface {
	EnforceFallback(ctx context.Context, limit units.Watts)
}

// Reconfigurer is implemented by backends whose configuration can be
// changed live through the control plane (leaf daemons). policyName is
// the operator-facing policy name currently in force; the returned name
// replaces it.
type Reconfigurer interface {
	Reconfigure(rc *Reconfigure, policyName string) (*ReconfigureAck, string, error)
}

// PhaseReporter is implemented by backends that expose the phase
// breakdown of their last control interval for round tracing.
type PhaseReporter interface {
	LastPhases() daemon.PhaseLatencies
}

// GrantForwarder is implemented by backends that can route a lease
// grant to a named descendant — mid-tier coordinators that know their
// children. Batched grant waves use it to multiplex one wave through a
// single endpoint.
type GrantForwarder interface {
	ForwardGrant(ctx context.Context, node string, g *LeaseGrant) (*LeaseAck, error)
}

// AgentConfig configures a node-side control-plane agent.
type AgentConfig struct {
	// Name identifies this node to coordinators and operators.
	Name string

	// NodeID is stamped into the Core field of the agent's flight events,
	// so a room-wide recorder can tell nodes apart. -1 when unset.
	NodeID int16

	// Daemon is the running power-delivery daemon the agent fronts.
	// Exactly one of Daemon and Backend must be set; a Daemon is wrapped
	// in the standard leaf backend.
	Daemon *daemon.Daemon

	// Backend fronts something other than a local daemon — a mid-tier
	// coordinator in the room→row→building hierarchy.
	Backend Backend

	// Fallback is the safe cap the node reverts to when its lease expires
	// without renewal. Defaults to the daemon's limit at agent creation,
	// so an agent that never hears from a coordinator keeps enforcing its
	// configured limit.
	Fallback units.Watts

	// PolicyName is the operator-facing policy name currently running
	// (e.g. "frequency", "priority-shares") — the vocabulary
	// opconfig.PolicyFor accepts. Policies report display names like
	// "frequency-shares", so the agent tracks the config-facing name
	// itself to rebuild policies on live reconfiguration.
	PolicyName string

	// Metrics optionally counts control-plane traffic and lease events.
	Metrics *metrics.Registry

	// Flight optionally records every lease transition and
	// reconfiguration for post-hoc analysis; a room-wide recorder can be
	// shared across agents (NodeID tells events apart).
	Flight *flight.Recorder

	// Tracer, when set, records the node-side span tree of every
	// coordinator round that touches this agent (receive plus the
	// daemon's last sample→decide→actuate phase breakdown, linked to
	// the flight-recorder interval), for the /debug/rounds endpoint and
	// powerdump's merged cross-node timeline.
	Tracer *tracing.Tracer

	// Ledger, when set, piggybacks the node's energy-ledger summary on
	// every status reply, so fleet coordinators get per-app joules,
	// cost/carbon, and anomaly counts from the poll they already make.
	Ledger *ledger.Ledger

	// now is the agent's clock; tests may override it.
	now func() time.Time
}

// Agent serves the node side of the control plane: it holds the lease
// state machine and translates wire messages into backend calls. Mount
// Handler() under PathPrefix on the node's observability server.
type Agent struct {
	cfg     AgentConfig
	backend Backend

	// applyMu serialises every operation that changes the enforced cap —
	// grant, expiry, drain — across its decide-and-apply window, so a
	// drain's fallback can never be overwritten by a grant that passed
	// its drain check first, and an expiry's fallback can never land on
	// top of a newer lease's cap. Always acquired before mu and held
	// across the backend call; status paths never take it, so a slow
	// cascaded SetLimit blocks other cap changes but not reads.
	applyMu sync.Mutex

	mu         sync.Mutex
	policyName string
	fallback   units.Watts
	draining   bool

	// Lease state. epoch invalidates pending expiry timers when a newer
	// grant supersedes them.
	leaseID      uint64
	leaseCoord   string
	leaseLimit   units.Watts
	leaseTTL     time.Duration
	leaseExpires time.Time
	leaseActive  bool
	epoch        uint64
	timer        *time.Timer

	mRequests *metrics.CounterVec // by endpoint
	mLease    *metrics.CounterVec // by event: grant, renew, expire, fallback, refuse
	mReconfig *metrics.Counter
	mLeaseW   *metrics.Gauge

	// Metrics-snapshot state for fleet aggregation: lastSent is the
	// previous snapshot served, against which deltas are computed.
	// Guarded by its own mutex so a slow registry walk never holds the
	// lease lock.
	metricsMu  sync.Mutex
	metricsRev uint64
	lastSent   map[string]float64

	// Delta-status encoder state: the last full frame served in delta
	// mode, the revision counter, and this incarnation's epoch. Like the
	// metrics piggyback, deltas are relative to the last frame served to
	// anyone — with several delta pollers, all but one must resync every
	// time, so point exactly one follower at each agent.
	deltaMu    sync.Mutex
	deltaEpoch uint64
	deltaRev   uint64
	deltaLast  *NodeStatus
}

// NewAgent validates the configuration and builds an agent.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("powerapi: agent needs a node name")
	}
	var be Backend
	switch {
	case cfg.Daemon != nil && cfg.Backend != nil:
		return nil, fmt.Errorf("powerapi: agent wants a daemon or a backend, not both")
	case cfg.Daemon != nil:
		if cfg.PolicyName != "" {
			if _, err := opconfig.PolicyFor(cfg.PolicyName, cfg.Daemon.Chip(), cfg.Daemon.Apps(),
				cfg.Daemon.Limit(), cfg.Daemon.SLOTargets()...); err != nil {
				return nil, fmt.Errorf("powerapi: agent policy name: %w", err)
			}
		}
		be = daemonBackend{d: cfg.Daemon, ledger: cfg.Ledger}
	case cfg.Backend != nil:
		be = cfg.Backend
	default:
		return nil, fmt.Errorf("powerapi: agent needs a daemon or a backend")
	}
	if cfg.Fallback < 0 {
		return nil, fmt.Errorf("powerapi: negative fallback cap %v", cfg.Fallback)
	}
	if cfg.Fallback == 0 {
		// Default to whatever limit the backend is enforcing right now,
		// so an agent that never hears from a coordinator keeps it.
		var st NodeStatus
		be.FillStatus(&st)
		cfg.Fallback = units.Watts(st.LimitWatts)
	}
	if cfg.NodeID == 0 {
		cfg.NodeID = -1
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	a := &Agent{
		cfg:        cfg,
		backend:    be,
		policyName: cfg.PolicyName,
		fallback:   cfg.Fallback,
		// The wall clock at construction distinguishes agent
		// incarnations, so a follower that was tracking a restarted
		// agent sees the epoch change and resyncs.
		deltaEpoch: uint64(cfg.now().UnixNano()),
	}
	if reg := cfg.Metrics; reg != nil {
		a.mRequests = reg.CounterVec("powerapi_requests_total", "Control-plane requests served, by endpoint.", "endpoint")
		a.mLease = reg.CounterVec("powerapi_lease_events_total", "Lease state-machine transitions, by event.", "event")
		a.mReconfig = reg.Counter("powerapi_reconfigures_total", "Live reconfigurations applied through the control plane.")
		a.mLeaseW = reg.Gauge("powerapi_lease_limit_watts", "Power cap of the currently-held lease (0 when none).")
	}
	return a, nil
}

// Name reports the node name the agent identifies itself with.
func (a *Agent) Name() string { return a.cfg.Name }

// record emits one lease/reconfigure flight event stamped with the node id.
func (a *Agent) record(kind flight.Kind, arg uint32, value, aux uint64) {
	a.cfg.Flight.Record(flight.Event{
		Kind: kind, Source: flight.SourceControl, Core: a.cfg.NodeID,
		Arg: arg, Value: value, Aux: aux,
	})
}

func microwatts(w units.Watts) uint64 {
	if w <= 0 {
		return 0
	}
	return uint64(float64(w) * 1e6)
}

// Handler returns the agent's HTTP handler. Mount it under PathPrefix.
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPrefix+"status", a.serveStatus)
	mux.HandleFunc(PathPrefix+"lease", a.serveLease)
	mux.HandleFunc(PathPrefix+"lease_batch", a.serveLeaseBatch)
	mux.HandleFunc(PathPrefix+"reconfigure", a.serveReconfigure)
	mux.HandleFunc(PathPrefix+"drain", a.serveDrain)
	return mux
}

// writeMsg frames msg in an envelope and writes it with the protocol
// media type.
func writeMsg(w http.ResponseWriter, status int, msg any) {
	writeMsgRound(w, status, msg, 0)
}

// writeMsgRound is writeMsg echoing the control-round ID the request
// carried, so both directions of a round's traffic join on it.
func writeMsgRound(w http.ResponseWriter, status int, msg any, round uint64) {
	data, err := MarshalRound(msg, round)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// writeErr writes a structured protocol error.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeMsg(w, status, &ErrorReply{Code: code, Message: fmt.Sprintf(format, args...)})
}

// readMsg decodes a request body expecting one message kind, enforcing
// method, media type, and size. It also returns the control-round ID
// the envelope carried, zero if none.
func readMsg(w http.ResponseWriter, r *http.Request, want string) (any, uint64, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, CodeBadRequest, "%s requires POST", r.URL.Path)
		return nil, 0, false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != ContentType {
			writeErr(w, http.StatusUnsupportedMediaType, CodeBadRequest, "content type %q, want %s", ct, ContentType)
			return nil, 0, false
		}
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return nil, 0, false
	}
	if len(data) > maxBody {
		writeErr(w, http.StatusRequestEntityTooLarge, CodeBadRequest, "body over %d bytes", maxBody)
		return nil, 0, false
	}
	env, msg, err := UnmarshalEnvelope(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return nil, 0, false
	}
	if env.Kind == KindError {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", msg.(*ErrorReply))
		return nil, 0, false
	}
	if env.Kind != want {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "got %s, want %s", env.Kind, want)
		return nil, 0, false
	}
	return msg, env.Round, true
}

// queryRound parses the ?round= query parameter body-less requests
// carry their round ID in.
func queryRound(r *http.Request) uint64 {
	round, _ := strconv.ParseUint(r.URL.Query().Get("round"), 10, 64)
	return round
}

// daemonBackend is the standard leaf backend: a local power-delivery
// daemon, optionally paired with its energy ledger.
type daemonBackend struct {
	d      *daemon.Daemon
	ledger *ledger.Ledger
}

// FillStatus snapshots the daemon's control-plane state. The daemon
// fields come from one StatusView — a single lock acquisition on the
// control loop — so the reported policy, limit, apps, and snapshot
// always belong to the same interval even while a reconfiguration is
// applied.
func (b daemonBackend) FillStatus(st *NodeStatus) {
	view := b.d.StatusView()
	st.Policy = view.Policy
	st.LimitWatts = float64(view.Limit)
	st.PowerWatts = float64(view.Snapshot.PackagePower)
	st.MaxWatts = float64(b.d.Chip().RAPLMax)
	st.Iterations = view.Iterations
	coreWatts := make(map[int]float64, len(view.Snapshot.Apps))
	for _, as := range view.Snapshot.Apps {
		coreWatts[as.Spec.Core] = float64(as.Power)
	}
	for _, s := range view.Apps {
		as := AppShare{Name: s.Name, Core: s.Core, Shares: int(s.Shares), Watts: coreWatts[s.Core]}
		if s.HighPriority {
			as.Priority = "hp"
		} else {
			as.Priority = "lp"
		}
		st.Apps = append(st.Apps, as)
	}
	if b.ledger != nil {
		st.Energy = energyStatus(b.ledger)
	}
	if len(view.Snapshot.Services) > 0 {
		st.SLO = sloStatus(view.Snapshot.Services)
	}
}

// sloStatus converts a snapshot's service telemetry into its wire form.
func sloStatus(svcs []core.ServiceSLO) *SLOStatus {
	ss := &SLOStatus{Services: make([]ServiceSLOStatus, len(svcs))}
	for i, s := range svcs {
		ss.Services[i] = ServiceSLOStatus{
			Name:     s.Name,
			P50MS:    s.P50 * 1e3,
			P90MS:    s.P90 * 1e3,
			P99MS:    s.P99 * 1e3,
			TargetMS: s.Target * 1e3,
			Rate:     s.Rate,
			QueueLen: s.QueueLen,
			Dropped:  s.Dropped,
			Timeouts: s.Timeouts,
			Met:      s.Met(),
		}
	}
	return ss
}

func (b daemonBackend) SetLimit(_ context.Context, limit units.Watts) error {
	return b.d.SetLimit(limit)
}

func (b daemonBackend) LastPhases() daemon.PhaseLatencies {
	return b.d.LastPhases()
}

// Status snapshots the node's control-plane state: the backend view
// plus the agent's own lease state.
func (a *Agent) Status() *NodeStatus {
	st := &NodeStatus{Node: a.cfg.Name}
	a.backend.FillStatus(st)
	a.mu.Lock()
	st.FallbackWatts = float64(a.fallback)
	st.Draining = a.draining
	if a.leaseActive {
		rem := a.leaseExpires.Sub(a.cfg.now())
		if rem < 0 {
			rem = 0
		}
		st.Lease = &LeaseInfo{
			ID:          a.leaseID,
			Coordinator: a.leaseCoord,
			LimitWatts:  float64(a.leaseLimit),
			TTLMS:       a.leaseTTL.Milliseconds(),
			RemainingMS: rem.Milliseconds(),
		}
	}
	a.mu.Unlock()
	return st
}

// energyStatus converts a ledger summary into its wire form.
func energyStatus(l *ledger.Ledger) *EnergyStatus {
	s := l.Summarize()
	es := &EnergyStatus{
		ElapsedSeconds:  s.ElapsedSeconds,
		Intervals:       s.Intervals,
		OverIntervals:   s.OverIntervals,
		TotalUJ:         s.TotalUJ,
		UnattributedUJ:  s.UnattributedUJ,
		ExcludedUJ:      s.ExcludedUJ,
		OvershootUJ:     s.OvershootUJ,
		TotalJoules:     s.TotalJoules,
		OvershootJoules: s.OvershootJoules,
		CostUSD:         s.CostUSD,
		CarbonGrams:     s.CarbonGrams,
		Anomalies:       s.Anomalies,
	}
	for _, a := range s.Apps {
		es.Apps = append(es.Apps, AppEnergy{
			Name:       a.Name,
			Core:       a.Core,
			TotalUJ:    a.TotalUJ,
			Joules:     a.Joules,
			EnergyFrac: a.EnergyFrac,
			ShareFrac:  a.ShareFrac,
		})
	}
	return es
}

// metricsSnapshot builds the snapshot a ?metrics= status request asked
// for and advances the delta baseline. Deltas are relative to the last
// snapshot served to anyone: with several pollers, have all but one use
// MetricsFull.
func (a *Agent) metricsSnapshot(mode string) (uint64, map[string]float64) {
	vals := a.cfg.Metrics.Values()
	if vals == nil {
		return 0, nil
	}
	a.metricsMu.Lock()
	defer a.metricsMu.Unlock()
	a.metricsRev++
	out := vals
	if mode == MetricsDelta {
		out = make(map[string]float64)
		for k, v := range vals {
			if old, ok := a.lastSent[k]; !ok || old != v {
				out[k] = v
			}
		}
	}
	a.lastSent = vals
	return a.metricsRev, out
}

// traceRound records this agent's span tree for one coordinator round:
// the request handling span plus the daemon's last completed
// sample→decide→actuate breakdown, anchored after it and linked to the
// flight-recorder interval id. No-op without a tracer or outside a
// round.
func (a *Agent) traceRound(round uint64, name string, start time.Duration) {
	tr := a.cfg.Tracer
	if tr == nil || round == 0 {
		return
	}
	b := tr.Begin(round)
	// Begin stamps Start at "now"; rewind it to when handling began.
	b.SetStart(start)
	end := tr.Now()
	b.Span(name, "", start, end, nil)
	if pr, ok := a.backend.(PhaseReporter); ok {
		if ph := pr.LastPhases(); ph.Interval != 0 {
			b.SetInterval(ph.Interval)
			// The phases ran asynchronously inside the control loop; they
			// are laid out back-to-back after the handling span so the
			// merged timeline shows the pipeline the round observed.
			t := end
			b.Span("sample", "", t, t+ph.Sample, nil)
			t += ph.Sample
			b.Span("decide", "", t, t+ph.Decide, nil)
			t += ph.Decide
			b.Span("actuate", "", t, t+ph.Actuate, nil)
		}
	}
	b.End()
}

func (a *Agent) serveStatus(w http.ResponseWriter, r *http.Request) {
	a.mRequests.With("status").Inc()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeErr(w, http.StatusMethodNotAllowed, CodeBadRequest, "status requires GET")
		return
	}
	mode := r.URL.Query().Get("metrics")
	switch mode {
	case MetricsNone, MetricsFull, MetricsDelta:
	default:
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "metrics mode %q, want full or delta", mode)
		return
	}
	enc := r.URL.Query().Get("status")
	switch enc {
	case "", StatusEncDelta:
	default:
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "status encoding %q, want delta or unset", enc)
		return
	}
	round := queryRound(r)
	start := a.cfg.Tracer.Now()
	st := a.Status()
	if mode != MetricsNone {
		st.MetricsRev, st.Metrics = a.metricsSnapshot(mode)
	}
	a.traceRound(round, "receive", start)
	if enc == StatusEncDelta {
		resync := r.URL.Query().Get("resync") != ""
		writeMsgRound(w, http.StatusOK, a.statusDelta(st, resync), round)
		return
	}
	writeMsgRound(w, http.StatusOK, st, round)
}

// statusDelta encodes one delta-mode status frame: a full resync frame
// when asked for (or when there is nothing to diff against), a
// changed-fields delta otherwise.
func (a *Agent) statusDelta(st *NodeStatus, resync bool) *StatusDelta {
	a.deltaMu.Lock()
	defer a.deltaMu.Unlock()
	a.deltaRev++
	var d *StatusDelta
	if resync || a.deltaLast == nil {
		d = &StatusDelta{V: DeltaVersion, Node: st.Node, Full: st}
	} else {
		d = DiffStatus(a.deltaLast, st)
		d.Base = a.deltaRev - 1
		d.MetricsRev, d.Metrics = st.MetricsRev, st.Metrics
	}
	d.Epoch = a.deltaEpoch
	d.Rev = a.deltaRev
	// The stored baseline never holds metrics: they are their own delta
	// stream and must not be diffed again.
	a.deltaLast = cloneStatus(st)
	a.deltaLast.MetricsRev, a.deltaLast.Metrics = 0, nil
	return d
}

// ApplyBatch applies one grant wave: entries addressed to this agent
// apply locally; entries addressed to other nodes are routed through
// the backend when it can forward (a mid-tier coordinator), and fail
// with unknown_node otherwise. Entry failures ride inside the ack.
func (a *Agent) ApplyBatch(ctx context.Context, b *GrantBatch) *GrantBatchAck {
	fwd, _ := a.backend.(GrantForwarder)
	ack := &GrantBatchAck{Acks: make([]NamedAck, 0, len(b.Grants))}
	for i := range b.Grants {
		ng := &b.Grants[i]
		g := ng.Grant
		if g.Coordinator == "" {
			g.Coordinator = b.Coordinator
		}
		var (
			la  *LeaseAck
			err error
		)
		switch {
		case ng.Node == "" || ng.Node == a.cfg.Name:
			la, err = a.GrantCtx(ctx, &g)
		case fwd != nil:
			la, err = fwd.ForwardGrant(ctx, ng.Node, &g)
		default:
			err = &ErrorReply{Code: CodeUnknownNode,
				Message: fmt.Sprintf("node %s cannot route grants to %q", a.cfg.Name, ng.Node)}
		}
		na := NamedAck{Node: ng.Node, Ack: la}
		if err != nil {
			na.Ack = nil
			if er, ok := err.(*ErrorReply); ok {
				na.Err = er
			} else {
				na.Err = &ErrorReply{Code: CodeInternal, Message: err.Error()}
			}
		}
		ack.Acks = append(ack.Acks, na)
	}
	return ack
}

func (a *Agent) serveLeaseBatch(w http.ResponseWriter, r *http.Request) {
	a.mRequests.With("lease_batch").Inc()
	msg, round, ok := readMsg(w, r, KindGrantBatch)
	if !ok {
		return
	}
	start := a.cfg.Tracer.Now()
	ctx := r.Context()
	if round != 0 {
		ctx = WithRound(ctx, round)
	}
	ack := a.ApplyBatch(ctx, msg.(*GrantBatch))
	a.traceRound(round, "grant", start)
	writeMsgRound(w, http.StatusOK, ack, round)
}

// Grant applies a budget lease: enforce the granted cap now, fall back to
// the grant's fallback cap if no renewal arrives within the TTL.
func (a *Agent) Grant(g *LeaseGrant) (*LeaseAck, error) {
	return a.GrantCtx(context.Background(), g)
}

// GrantCtx is Grant with the caller's context threaded into the
// backend's SetLimit. A round-stamped context lets a mid-tier backend
// record its cascaded child grants under the parent's round ID, which
// is what joins the cross-tier merged timeline.
func (a *Agent) GrantCtx(ctx context.Context, g *LeaseGrant) (*LeaseAck, error) {
	limit := units.Watts(g.LimitWatts)
	ttl := time.Duration(g.TTLMS) * time.Millisecond

	a.applyMu.Lock()
	defer a.applyMu.Unlock()
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		a.mLease.With("refuse").Inc()
		a.record(flight.KindLease, flight.LeaseRefuse, microwatts(limit), 0)
		return &LeaseAck{ID: g.ID, Applied: false, Reason: "draining"},
			&ErrorReply{Code: CodeDraining, Message: fmt.Sprintf("node %s is draining", a.cfg.Name)}
	}
	if limit <= 0 || ttl <= 0 {
		a.mu.Unlock()
		a.mLease.With("refuse").Inc()
		a.record(flight.KindLease, flight.LeaseRefuse, microwatts(limit), 0)
		return &LeaseAck{ID: g.ID, Applied: false, Reason: "invalid grant"},
			&ErrorReply{Code: CodeInvalid, Message: fmt.Sprintf("grant limit %v ttl %v", limit, ttl)}
	}
	if a.leaseActive && g.ID < a.leaseID {
		held := a.leaseID
		a.mu.Unlock()
		a.mLease.With("refuse").Inc()
		a.record(flight.KindLease, flight.LeaseRefuse, microwatts(limit), 0)
		return &LeaseAck{ID: g.ID, Applied: false, LimitWatts: 0, Reason: "stale lease id"},
			&ErrorReply{Code: CodeStaleLease, Message: fmt.Sprintf("grant %d older than held lease %d", g.ID, held)}
	}
	renewal := a.leaseActive
	a.leaseActive = true
	a.leaseID = g.ID
	a.leaseCoord = g.Coordinator
	a.leaseLimit = limit
	a.leaseTTL = ttl
	a.leaseExpires = a.cfg.now().Add(ttl)
	if g.FallbackWatts > 0 {
		a.fallback = units.Watts(g.FallbackWatts)
	}
	a.epoch++
	epoch := a.epoch
	if a.timer != nil {
		a.timer.Stop()
	}
	a.timer = time.AfterFunc(ttl, func() { a.expire(epoch) })
	a.mu.Unlock()

	// The cap is applied outside the lease lock: a mid-tier backend's
	// SetLimit cascades a shrink wave to its children, which may take a
	// child round-trip.
	if err := a.backend.SetLimit(ctx, limit); err != nil {
		a.mu.Lock()
		a.leaseActive = false
		if a.timer != nil {
			a.timer.Stop()
		}
		a.mu.Unlock()
		a.mLease.With("refuse").Inc()
		a.record(flight.KindLease, flight.LeaseRefuse, microwatts(limit), 0)
		return &LeaseAck{ID: g.ID, Applied: false, Reason: err.Error()},
			&ErrorReply{Code: CodeInvalid, Message: err.Error()}
	}
	event, code := "grant", flight.LeaseGrant
	if renewal {
		event, code = "renew", flight.LeaseRenew
	}
	a.mLease.With(event).Inc()
	a.mLeaseW.Set(float64(limit))
	a.record(flight.KindLease, code, microwatts(limit), uint64(ttl))
	return &LeaseAck{ID: g.ID, Applied: true, LimitWatts: float64(limit)}, nil
}

// expire fires when a lease's TTL elapses without renewal: the node
// reverts to its fallback cap on its own, so a partition cannot leave it
// holding an oversized share of the room budget.
func (a *Agent) expire(epoch uint64) {
	a.applyMu.Lock()
	defer a.applyMu.Unlock()
	a.mu.Lock()
	if epoch != a.epoch || !a.leaseActive {
		a.mu.Unlock()
		return
	}
	old := a.leaseLimit
	fallback := a.fallback
	a.leaseActive = false
	a.mu.Unlock()

	a.mLease.With("expire").Inc()
	a.mLeaseW.Set(0)
	a.record(flight.KindLease, flight.LeaseExpire, microwatts(old), microwatts(old))
	if fe, ok := a.backend.(FallbackEnforcer); ok {
		fe.EnforceFallback(context.Background(), fallback)
	} else if err := a.backend.SetLimit(context.Background(), fallback); err != nil {
		// The old cap stays enforced: safe, just not the fallback.
		return
	}
	a.mLease.With("fallback").Inc()
	a.record(flight.KindLease, flight.LeaseFallback, microwatts(fallback), microwatts(old))
}

func (a *Agent) serveLease(w http.ResponseWriter, r *http.Request) {
	a.mRequests.With("lease").Inc()
	msg, round, ok := readMsg(w, r, KindLeaseGrant)
	if !ok {
		return
	}
	start := a.cfg.Tracer.Now()
	ctx := r.Context()
	if round != 0 {
		ctx = WithRound(ctx, round)
	}
	ack, err := a.GrantCtx(ctx, msg.(*LeaseGrant))
	a.traceRound(round, "grant", start)
	if err != nil {
		status := http.StatusConflict
		if e, k := err.(*ErrorReply); k && e.Code == CodeInvalid {
			status = http.StatusBadRequest
		}
		writeMsgRound(w, status, err.(*ErrorReply), round)
		return
	}
	writeMsgRound(w, http.StatusOK, ack, round)
}

// ApplyReconfigure hands a wire reconfiguration to the backend when it
// supports live reconfiguration (leaf daemons do; tiers don't).
func (a *Agent) ApplyReconfigure(rc *Reconfigure) (*ReconfigureAck, error) {
	rb, ok := a.backend.(Reconfigurer)
	if !ok {
		return nil, &ErrorReply{Code: CodeInvalid,
			Message: fmt.Sprintf("node %s does not support live reconfiguration", a.cfg.Name)}
	}
	a.mu.Lock()
	polName := a.policyName
	a.mu.Unlock()
	ack, newName, err := rb.Reconfigure(rc, polName)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.policyName = newName
	a.mu.Unlock()
	a.mReconfig.Inc()
	return ack, nil
}

// Reconfigure translates a wire reconfiguration into a daemon
// Reconfigure: share/priority overrides are resolved against the current
// app set by name, and the policy is rebuilt through the same factory the
// config loader uses, so live changes face construction-grade validation.
func (b daemonBackend) Reconfigure(rc *Reconfigure, polName string) (*ReconfigureAck, string, error) {
	d := b.d

	if rc.Policy != "" {
		polName = rc.Policy
	}
	if polName == "" {
		return nil, "", &ErrorReply{Code: CodeInvalid,
			Message: "agent has no operator policy name; set one at startup to allow policy rebuilds"}
	}

	limit := d.Limit()
	if rc.LimitWatts != 0 {
		if rc.LimitWatts < 0 {
			return nil, "", &ErrorReply{Code: CodeInvalid, Message: fmt.Sprintf("limit %v W", rc.LimitWatts)}
		}
		limit = units.Watts(rc.LimitWatts)
	}

	specsChanged := len(rc.Shares) > 0 || len(rc.Priorities) > 0
	specs := d.Apps()
	if specsChanged {
		byName := make(map[string]int, len(specs))
		for i, s := range specs {
			byName[s.Name] = i
		}
		for name, shares := range rc.Shares {
			i, ok := byName[name]
			if !ok {
				return nil, "", &ErrorReply{Code: CodeInvalid, Message: fmt.Sprintf("no app %q", name)}
			}
			if shares <= 0 {
				return nil, "", &ErrorReply{Code: CodeInvalid, Message: fmt.Sprintf("app %q shares %d", name, shares)}
			}
			specs[i].Shares = units.Shares(shares)
		}
		for name, prio := range rc.Priorities {
			i, ok := byName[name]
			if !ok {
				return nil, "", &ErrorReply{Code: CodeInvalid, Message: fmt.Sprintf("no app %q", name)}
			}
			switch prio {
			case "hp", "lp":
				specs[i].HighPriority = prio == "hp"
			default:
				return nil, "", &ErrorReply{Code: CodeInvalid, Message: fmt.Sprintf("app %q priority %q, want hp or lp", name, prio)}
			}
		}
	}

	drc := daemon.Reconfig{}
	if rc.LimitWatts != 0 {
		drc.Limit = limit
	}
	if rc.Policy != "" || specsChanged {
		pol, err := opconfig.PolicyFor(polName, d.Chip(), specs, limit, d.SLOTargets()...)
		if err != nil {
			return nil, "", &ErrorReply{Code: CodeInvalid, Message: err.Error()}
		}
		drc.Policy = pol
		if specsChanged {
			drc.Apps = specs
		}
	}
	if err := d.Reconfigure(drc); err != nil {
		return nil, "", &ErrorReply{Code: CodeInvalid, Message: err.Error()}
	}
	return &ReconfigureAck{Policy: d.PolicyName(), LimitWatts: float64(d.Limit())}, polName, nil
}

func (a *Agent) serveReconfigure(w http.ResponseWriter, r *http.Request) {
	a.mRequests.With("reconfigure").Inc()
	msg, round, ok := readMsg(w, r, KindReconfigure)
	if !ok {
		return
	}
	ack, err := a.ApplyReconfigure(msg.(*Reconfigure))
	if err != nil {
		writeMsgRound(w, http.StatusBadRequest, err.(*ErrorReply), round)
		return
	}
	writeMsgRound(w, http.StatusOK, ack, round)
}

// SetDrain toggles drain mode. Draining cancels any held lease, drops the
// node to its fallback cap, and refuses new leases until undrained.
func (a *Agent) SetDrain(on bool) (*DrainAck, error) {
	a.applyMu.Lock()
	defer a.applyMu.Unlock()
	a.mu.Lock()
	was := a.draining
	a.draining = on
	hadLease := a.leaseActive
	fallback := a.fallback
	if on {
		a.leaseActive = false
		a.epoch++
		if a.timer != nil {
			a.timer.Stop()
		}
	}
	a.mu.Unlock()

	if on && !was {
		a.record(flight.KindReconfigure, flight.ReconfigDrain, microwatts(fallback), 1)
		if hadLease {
			a.mLeaseW.Set(0)
		}
		if fe, ok := a.backend.(FallbackEnforcer); ok {
			fe.EnforceFallback(context.Background(), fallback)
		} else if err := a.backend.SetLimit(context.Background(), fallback); err != nil {
			return nil, &ErrorReply{Code: CodeInternal, Message: err.Error()}
		}
	}
	if !on && was {
		a.record(flight.KindReconfigure, flight.ReconfigDrain, microwatts(fallback), 0)
	}
	return &DrainAck{Draining: on}, nil
}

func (a *Agent) serveDrain(w http.ResponseWriter, r *http.Request) {
	a.mRequests.With("drain").Inc()
	msg, round, ok := readMsg(w, r, KindDrain)
	if !ok {
		return
	}
	ack, err := a.SetDrain(msg.(*Drain).On)
	if err != nil {
		writeMsgRound(w, http.StatusInternalServerError, err.(*ErrorReply), round)
		return
	}
	writeMsgRound(w, http.StatusOK, ack, round)
}

// Close stops any pending lease-expiry timer. The agent must not be used
// afterwards.
func (a *Agent) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.epoch++
	if a.timer != nil {
		a.timer.Stop()
	}
}
