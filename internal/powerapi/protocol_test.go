package powerapi

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// one populated instance of every message kind — shared with the fuzz
// corpus so the codec is seeded with realistic traffic.
func ptr[T any](v T) *T { return &v }

func sampleMessages() []any {
	return []any{
		&NodeStatus{
			Node: "n0", Policy: "frequency-shares", LimitWatts: 42.5, PowerWatts: 39.1,
			MaxWatts: 85, FallbackWatts: 25, Iterations: 17, Draining: true,
			Lease:      &LeaseInfo{ID: 9, Coordinator: "coord", LimitWatts: 42.5, TTLMS: 1500, RemainingMS: 900},
			Apps:       []AppShare{{Name: "gcc", Core: 0, Shares: 90, Priority: "hp", Watts: 3.25}, {Name: "cam4", Core: 1, Shares: 10, Priority: "lp"}},
			MetricsRev: 4,
			Metrics:    map[string]float64{"powerd_iterations_total": 17, `powerapi_lease_events_total{event="grant"}`: 2},
		},
		&StatusDelta{
			V: DeltaVersion, Node: "row0", Epoch: 7, Rev: 12, Base: 11,
			PowerWatts: ptr(38.5), Iterations: ptr(18), Clear: []string{"lease"},
			Tier:       &TierStatus{Tier: "row", Children: 8, Nodes: 64, Depth: 1, BudgetWatts: 400},
			MetricsRev: 5, Metrics: map[string]float64{"powerd_iterations_total": 18},
		},
		&LeaseGrant{ID: 10, Coordinator: "coord", LimitWatts: 40, TTLMS: 1500, FallbackWatts: 25},
		&LeaseAck{ID: 10, Applied: true, LimitWatts: 40},
		&GrantBatch{Coordinator: "building", Grants: []NamedGrant{
			{Node: "row0", Grant: LeaseGrant{ID: 3, LimitWatts: 400, TTLMS: 2000, FallbackWatts: 200}},
			{Node: "row1", Grant: LeaseGrant{ID: 4, LimitWatts: 350, TTLMS: 2000}},
		}},
		&GrantBatchAck{Acks: []NamedAck{
			{Node: "row0", Ack: &LeaseAck{ID: 3, Applied: true, LimitWatts: 400}},
			{Node: "row1", Err: &ErrorReply{Code: CodeDraining, Message: "node row1 is draining"}},
		}},
		&Reconfigure{Policy: "priority-shares", LimitWatts: 30,
			Shares: map[string]int{"gcc": 70}, Priorities: map[string]string{"gcc": "hp"}},
		&ReconfigureAck{Policy: "priority-shares", LimitWatts: 30},
		&Drain{On: true},
		&DrainAck{Draining: true},
		&Register{Node: "n0", Addr: "host0:9090"},
		&RegisterAck{Accepted: true},
		&Heartbeat{Node: "n0"},
		&HeartbeatAck{Known: true},
		&ErrorReply{Code: CodeDraining, Message: "node n0 is draining"},
	}
}

func TestRoundTripEveryKind(t *testing.T) {
	for _, msg := range sampleMessages() {
		kind := KindOf(msg)
		if kind == "" {
			t.Fatalf("%T has no kind", msg)
		}
		data, err := Marshal(msg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		gotKind, got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if gotKind != kind {
			t.Errorf("kind %s round-tripped as %s", kind, gotKind)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%s round trip:\n got %+v\nwant %+v", kind, got, msg)
		}
	}
}

func TestUnmarshalRejects(t *testing.T) {
	good, err := Marshal(&Drain{On: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty", ``, "envelope"},
		{"not json", `nope`, "envelope"},
		{"wrong version", `{"v":2,"kind":"drain","body":{"on":true}}`, "version"},
		{"unknown kind", `{"v":1,"kind":"self_destruct","body":{}}`, "unknown kind"},
		{"unknown body field", `{"v":1,"kind":"drain","body":{"on":true,"blast_radius":3}}`, "unknown field"},
		{"body type mismatch", `{"v":1,"kind":"drain","body":{"on":"yes"}}`, "body"},
	}
	for _, c := range cases {
		if _, _, err := Unmarshal([]byte(c.data)); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.data)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// Sanity: the valid envelope still parses.
	if _, _, err := Unmarshal(good); err != nil {
		t.Errorf("valid envelope rejected: %v", err)
	}
}

func TestMarshalRejectsForeignTypes(t *testing.T) {
	if _, err := Marshal(struct{ X int }{1}); err == nil {
		t.Error("non-protocol type marshaled")
	}
	if _, err := Marshal(&struct{ X int }{1}); err == nil {
		t.Error("non-protocol pointer marshaled")
	}
}

func TestUnmarshalAs(t *testing.T) {
	data, err := Marshal(&LeaseAck{ID: 1, Applied: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalAs(data, KindLeaseAck); err != nil {
		t.Errorf("expected kind rejected: %v", err)
	}
	if _, err := UnmarshalAs(data, KindStatus); err == nil {
		t.Error("kind mismatch accepted")
	}
	edata, err := Marshal(&ErrorReply{Code: CodeInvalid, Message: "nope"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = UnmarshalAs(edata, KindLeaseAck)
	er, ok := err.(*ErrorReply)
	if !ok {
		t.Fatalf("error envelope surfaced as %T (%v), want *ErrorReply", err, err)
	}
	if er.Code != CodeInvalid {
		t.Errorf("code %q, want %q", er.Code, CodeInvalid)
	}
}

// The registry and KindOf must agree: every registered kind's zero value
// must map back to its kind string, so the codec cannot silently drop a
// message type from one side.
func TestRegistryAndKindOfAgree(t *testing.T) {
	for kind, mk := range kinds {
		if got := KindOf(mk()); got != kind {
			t.Errorf("registry kind %q maps to KindOf %q", kind, got)
		}
	}
	if len(kinds) != len(sampleMessages()) {
		t.Errorf("%d registered kinds but %d samples; keep sampleMessages in sync", len(kinds), len(sampleMessages()))
	}
}

// Envelope bodies must stay valid JSON after Marshal (no double encoding).
func TestEnvelopeBodyIsPlainJSON(t *testing.T) {
	data, err := Marshal(&Register{Node: "n0", Addr: "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.Unmarshal(env.Body, &body); err != nil {
		t.Fatalf("body is not a JSON object: %v", err)
	}
	if body["node"] != "n0" {
		t.Errorf("body = %v", body)
	}
}
