package powerapi_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/metrics/decisions"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/powerapi"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// node is one loopback control-plane node: a simulated machine, its
// daemon, the powerapi agent fronting it, and an obs server carrying the
// agent's endpoints — the exact wiring cmd/powerd -listen -node-name uses.
type node struct {
	m       *sim.Machine
	d       *daemon.Daemon
	agent   *powerapi.Agent
	journal *decisions.Journal
	srv     *httptest.Server
}

// newNode builds a Skylake loopback node running two workloads under the
// frequency-share policy at the given limit.
func newNode(t *testing.T, name string, limit units.Watts, fallback units.Watts, rec *flight.Recorder, id int16) *node {
	t.Helper()
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	apps := []string{"gcc", "cam4"}
	specs := make([]core.AppSpec, len(apps))
	for i, a := range apps {
		p := workload.MustByName(a)
		if err := m.Pin(workload.NewInstance(p), i); err != nil {
			t.Fatal(err)
		}
		specs[i] = core.AppSpec{Name: a, Core: i, Shares: 50, AVX: p.AVX}
	}
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	journal := decisions.NewJournal(0)
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: limit,
		Metrics: reg, Journal: journal, Flight: rec,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	agent, err := powerapi.NewAgent(powerapi.AgentConfig{
		Name: name, NodeID: id, Daemon: d, Fallback: fallback,
		PolicyName: "frequency", Metrics: reg, Flight: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	osrv := obs.New(reg, journal, obs.DaemonStatusFunc(d),
		obs.WithHandler(powerapi.PathPrefix, agent.Handler()))
	srv := httptest.NewServer(osrv.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(agent.Close)
	return &node{m: m, d: d, agent: agent, journal: journal, srv: srv}
}

func TestStatusOverTheWire(t *testing.T) {
	n := newNode(t, "n0", 50, 0, nil, 0)
	n.m.Run(3 * time.Second)
	c := powerapi.NewClient(n.srv.URL)
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "n0" {
		t.Errorf("node = %q", st.Node)
	}
	if st.Policy != n.d.PolicyName() {
		t.Errorf("policy = %q, want %q", st.Policy, n.d.PolicyName())
	}
	if st.LimitWatts != 50 {
		t.Errorf("limit = %v", st.LimitWatts)
	}
	if st.FallbackWatts != 50 { // defaulted to the construction limit
		t.Errorf("fallback = %v", st.FallbackWatts)
	}
	if st.PowerWatts <= 0 {
		t.Errorf("power = %v, want positive after a run", st.PowerWatts)
	}
	if st.MaxWatts != float64(platform.Skylake().RAPLMax) {
		t.Errorf("max = %v", st.MaxWatts)
	}
	if st.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", st.Iterations)
	}
	if len(st.Apps) != 2 || st.Apps[0].Name != "gcc" || st.Apps[0].Shares != 50 {
		t.Errorf("apps = %+v", st.Apps)
	}
	if st.Lease != nil {
		t.Errorf("unsolicited lease: %+v", st.Lease)
	}
}

func TestLeaseLifecycle(t *testing.T) {
	rec := flight.New(0)
	n := newNode(t, "n0", 50, 30, rec, 3)
	c := powerapi.NewClient(n.srv.URL)
	ctx := context.Background()

	ttl := 120 * time.Millisecond
	ack, err := c.Lease(ctx, &powerapi.LeaseGrant{ID: 1, Coordinator: "coord", LimitWatts: 40, TTLMS: ttl.Milliseconds()})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Applied || ack.LimitWatts != 40 {
		t.Fatalf("ack = %+v", ack)
	}
	if got := n.d.Limit(); got != 40 {
		t.Fatalf("daemon limit = %v after grant", got)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Lease == nil || st.Lease.ID != 1 || st.Lease.Coordinator != "coord" {
		t.Fatalf("status lease = %+v", st.Lease)
	}

	// Renewal at a new cap while the lease is live.
	if _, err := c.Lease(ctx, &powerapi.LeaseGrant{ID: 2, LimitWatts: 45, TTLMS: ttl.Milliseconds()}); err != nil {
		t.Fatal(err)
	}
	if got := n.d.Limit(); got != 45 {
		t.Fatalf("daemon limit = %v after renewal", got)
	}

	// Let the lease lapse: the node must revert to the fallback cap on
	// its own, within one TTL (plus scheduling slack).
	deadline := time.Now().Add(ttl + 500*time.Millisecond)
	for n.d.Limit() != 30 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := n.d.Limit(); got != 30 {
		t.Fatalf("daemon limit = %v after expiry, want fallback 30", got)
	}

	// The whole state machine must be in the flight recorder.
	var codes []uint32
	for _, e := range rec.Dump("test").Events {
		if e.Kind != flight.KindLease {
			continue
		}
		if e.Source != flight.SourceControl {
			t.Errorf("lease event source = %v", e.Source)
		}
		if e.Core != 3 {
			t.Errorf("lease event node id = %d, want 3", e.Core)
		}
		codes = append(codes, e.Arg)
	}
	want := []uint32{flight.LeaseGrant, flight.LeaseRenew, flight.LeaseExpire, flight.LeaseFallback}
	if len(codes) != len(want) {
		t.Fatalf("lease events = %v, want %v", codes, want)
	}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("lease event %d = %s, want %s", i, flight.LeaseName(codes[i]), flight.LeaseName(want[i]))
		}
	}
}

func TestStaleLeaseRefused(t *testing.T) {
	n := newNode(t, "n0", 50, 0, nil, 0)
	c := powerapi.NewClient(n.srv.URL)
	ctx := context.Background()
	if _, err := c.Lease(ctx, &powerapi.LeaseGrant{ID: 5, LimitWatts: 40, TTLMS: 60_000}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Lease(ctx, &powerapi.LeaseGrant{ID: 3, LimitWatts: 60, TTLMS: 60_000})
	er, ok := err.(*powerapi.ErrorReply)
	if !ok || er.Code != powerapi.CodeStaleLease {
		t.Fatalf("stale grant -> %v, want %s", err, powerapi.CodeStaleLease)
	}
	if got := n.d.Limit(); got != 40 {
		t.Errorf("stale grant changed the limit to %v", got)
	}
}

func TestDrainRefusesLeases(t *testing.T) {
	n := newNode(t, "n0", 50, 35, nil, 0)
	c := powerapi.NewClient(n.srv.URL)
	ctx := context.Background()

	if _, err := c.Lease(ctx, &powerapi.LeaseGrant{ID: 1, LimitWatts: 48, TTLMS: 60_000}); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Drain(ctx, true)
	if err != nil || !ack.Draining {
		t.Fatalf("drain on: %+v, %v", ack, err)
	}
	if got := n.d.Limit(); got != 35 {
		t.Errorf("draining node limit = %v, want fallback 35", got)
	}
	_, err = c.Lease(ctx, &powerapi.LeaseGrant{ID: 2, LimitWatts: 48, TTLMS: 60_000})
	er, ok := err.(*powerapi.ErrorReply)
	if !ok || er.Code != powerapi.CodeDraining {
		t.Fatalf("grant while draining -> %v, want %s", err, powerapi.CodeDraining)
	}
	if ack, err := c.Drain(ctx, false); err != nil || ack.Draining {
		t.Fatalf("drain off: %+v, %v", ack, err)
	}
	if _, err := c.Lease(ctx, &powerapi.LeaseGrant{ID: 3, LimitWatts: 48, TTLMS: 60_000}); err != nil {
		t.Fatalf("grant after undrain: %v", err)
	}
}

// TestLiveReconfigure is the acceptance check for live reconfiguration:
// switch a running daemon's policy and shares over the wire (exactly what
// powerctl sends), and verify the decision journal shows the change on the
// next interval with no dropped sample.
func TestLiveReconfigure(t *testing.T) {
	n := newNode(t, "n0", 50, 0, nil, 0)
	c := powerapi.NewClient(n.srv.URL)
	ctx := context.Background()

	n.m.Run(5 * time.Second)
	oldName := n.d.PolicyName()
	before := n.journal.Total()
	if before != 5 {
		t.Fatalf("journal has %d entries after 5 intervals", before)
	}

	ack, err := c.Reconfigure(ctx, &powerapi.Reconfigure{
		Policy: "performance",
		Shares: map[string]int{"gcc": 80, "cam4": 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	newName := n.d.PolicyName()
	if newName == oldName {
		t.Fatalf("policy name still %q after reconfigure", newName)
	}
	if ack.Policy != newName {
		t.Errorf("ack policy = %q, want %q", ack.Policy, newName)
	}

	n.m.Run(5 * time.Second)

	// No dropped sample: 5 intervals + 1 reconfigure mark + 5 intervals,
	// contiguous Seq.
	entries := n.journal.Tail(int(n.journal.Total()))
	if len(entries) != 11 {
		t.Fatalf("journal has %d entries, want 11", len(entries))
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d; a sample was dropped", i, e.Seq)
		}
	}

	// The reconfigure mark sits between the two runs and the very next
	// decision runs under the new policy.
	mark := entries[5]
	if len(mark.Reasons) != 1 || mark.Reasons[0] != string(core.ReasonReconfigure) {
		t.Fatalf("entry 6 reasons = %v, want [%s]", mark.Reasons, core.ReasonReconfigure)
	}
	for _, e := range entries[:5] {
		if e.Policy != oldName {
			t.Errorf("pre-reconfigure entry seq %d under policy %q, want %q", e.Seq, e.Policy, oldName)
		}
	}
	for _, e := range entries[6:] {
		if e.Policy != newName {
			t.Errorf("post-reconfigure entry seq %d under policy %q, want %q", e.Seq, e.Policy, newName)
		}
	}

	// The share change is visible in the daemon's spec set.
	for _, s := range n.d.Apps() {
		want := units.Shares(80)
		if s.Name == "cam4" {
			want = 20
		}
		if s.Shares != want {
			t.Errorf("app %s shares = %v, want %v", s.Name, s.Shares, want)
		}
	}
}

func TestReconfigureValidation(t *testing.T) {
	n := newNode(t, "n0", 50, 0, nil, 0)
	c := powerapi.NewClient(n.srv.URL)
	ctx := context.Background()
	cases := []*powerapi.Reconfigure{
		{},                                  // empty
		{Shares: map[string]int{"nope": 5}}, // unknown app
		{Shares: map[string]int{"gcc": 0}},  // non-positive shares
		{Priorities: map[string]string{"gcc": "vip"}}, // bad priority class
		{LimitWatts: -3},             // negative limit
		{Policy: "thermal-roulette"}, // unknown policy
	}
	for _, rc := range cases {
		if _, err := c.Reconfigure(ctx, rc); err == nil {
			t.Errorf("reconfigure %+v accepted", rc)
		}
	}
	if got := n.d.PolicyName(); got != "frequency-shares" {
		t.Errorf("policy changed to %q by rejected reconfigures", got)
	}
	if got := n.d.Limit(); got != 50 {
		t.Errorf("limit changed to %v by rejected reconfigures", got)
	}
}

// TestAgentEndpointHardening covers the method and media-type contract of
// every control-plane endpoint.
func TestAgentEndpointHardening(t *testing.T) {
	n := newNode(t, "n0", 50, 0, nil, 0)
	base := n.srv.URL

	// Wrong methods get 405 with an Allow header.
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPost, powerapi.PathPrefix + "status", "GET"},
		{http.MethodGet, powerapi.PathPrefix + "lease", "POST"},
		{http.MethodGet, powerapi.PathPrefix + "reconfigure", "POST"},
		{http.MethodGet, powerapi.PathPrefix + "drain", "POST"},
		{http.MethodDelete, powerapi.PathPrefix + "lease", "POST"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, base+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s -> %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		if ct := resp.Header.Get("Content-Type"); ct != powerapi.ContentType {
			t.Errorf("%s %s error Content-Type = %q", tc.method, tc.path, ct)
		}
	}

	// Wrong media type on a POST gets 415.
	body, err := powerapi.Marshal(&powerapi.Drain{On: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+powerapi.PathPrefix+"drain", "text/plain", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("text/plain POST -> %d, want 415", resp.StatusCode)
	}

	// Malformed and oversized bodies are rejected, not 500s.
	resp, err = http.Post(base+powerapi.PathPrefix+"drain", powerapi.ContentType, strings.NewReader(`{"v":1,`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated body -> %d, want 400", resp.StatusCode)
	}
	big := strings.NewReader(`{"pad":"` + strings.Repeat("x", 1<<21) + `"}`)
	resp, err = http.Post(base+powerapi.PathPrefix+"drain", powerapi.ContentType, big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body -> %d, want 413", resp.StatusCode)
	}

	// Happy-path responses declare their media type too.
	resp, err = http.Get(base + powerapi.PathPrefix + "status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != powerapi.ContentType {
		t.Errorf("status Content-Type = %q", ct)
	}
}
