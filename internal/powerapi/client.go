package powerapi

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Client speaks the node side of the protocol to one powerd daemon —
// the coordinator's and powerctl's view of a remote node.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for a node's observability address
// (e.g. "127.0.0.1:9090" or "http://node7:9090").
func NewClient(addr string) *Client {
	return &Client{base: normalize(addr), http: http.DefaultClient}
}

// WithHTTPClient swaps the underlying HTTP client (tests, timeouts).
func (c *Client) WithHTTPClient(h *http.Client) *Client {
	c.http = h
	return c
}

func normalize(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// roundTrip performs one request and decodes the expected reply kind;
// ErrorReply envelopes surface as *ErrorReply errors. A control-round
// ID on the context (WithRound) is propagated: bodied requests carry it
// in the envelope, body-less ones as a ?round= query parameter.
func (c *Client) roundTrip(ctx context.Context, method, path string, msg any, want string) (any, error) {
	round := RoundFrom(ctx)
	var body io.Reader
	if msg != nil {
		data, err := MarshalRound(msg, round)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(data)
	} else if round != 0 {
		sep := "?"
		if strings.Contains(path, "?") {
			sep = "&"
		}
		path += sep + "round=" + strconv.FormatUint(round, 10)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("powerapi: %w", err)
	}
	if msg != nil {
		req.Header.Set("Content-Type", ContentType)
	}
	req.Header.Set("Accept", ContentType)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("powerapi: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, fmt.Errorf("powerapi: %s %s: reading reply: %w", method, path, err)
	}
	reply, err := UnmarshalAs(data, want)
	if err != nil {
		if _, ok := err.(*ErrorReply); !ok && resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("powerapi: %s %s: HTTP %d: %s", method, path, resp.StatusCode, firstLine(data))
		}
		return nil, err
	}
	return reply, nil
}

func firstLine(data []byte) string {
	s := strings.TrimSpace(string(data))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// Status fetches the node's control-plane status.
func (c *Client) Status(ctx context.Context) (*NodeStatus, error) {
	return c.StatusWithMetrics(ctx, MetricsNone)
}

// Metrics snapshot modes for StatusWithMetrics.
const (
	MetricsNone  = ""      // no snapshot (plain status)
	MetricsFull  = "full"  // every series
	MetricsDelta = "delta" // only series changed since the agent's last snapshot
)

// StatusWithMetrics fetches the node's status with a piggybacked
// metrics snapshot: MetricsFull for every series, MetricsDelta for only
// what changed since the agent's previous snapshot. Use MetricsFull on
// first contact and after any transport failure (a lost response also
// loses the delta it carried), MetricsDelta on the steady path.
func (c *Client) StatusWithMetrics(ctx context.Context, mode string) (*NodeStatus, error) {
	path := PathPrefix + "status"
	if mode != MetricsNone {
		path += "?metrics=" + mode
	}
	reply, err := c.roundTrip(ctx, http.MethodGet, path, nil, KindStatus)
	if err != nil {
		return nil, err
	}
	return reply.(*NodeStatus), nil
}

// StatusEncDelta asks the status endpoint for a delta-encoded frame.
const StatusEncDelta = "delta"

// StatusDelta fetches one delta-encoded status frame. resync forces a
// full frame; use it on first contact and whenever the follower lost
// sync. Most callers want FollowStatus instead.
func (c *Client) StatusDelta(ctx context.Context, metricsMode string, resync bool) (*StatusDelta, error) {
	path := PathPrefix + "status?status=" + StatusEncDelta
	if metricsMode != MetricsNone {
		path += "&metrics=" + metricsMode
	}
	if resync {
		path += "&resync=1"
	}
	reply, err := c.roundTrip(ctx, http.MethodGet, path, nil, KindStatusDelta)
	if err != nil {
		return nil, err
	}
	return reply.(*StatusDelta), nil
}

// FollowStatus fetches the node's status through a delta follower: a
// delta frame on the steady path, a full resync frame when the
// follower is unsynchronized, and one automatic resync retry when a
// delta frame turns out inapplicable (missed revision, restarted
// agent, foreign delta version). Transport failures reset the follower
// — the lost response also lost the delta it carried.
func (c *Client) FollowStatus(ctx context.Context, f *StatusFollower, metricsMode string) (*NodeStatus, error) {
	resync := !f.Synced()
	d, err := c.StatusDelta(ctx, metricsMode, resync)
	if err != nil {
		f.Reset()
		return nil, err
	}
	st, err := f.Apply(d)
	if err == nil {
		return st, nil
	}
	if resync {
		return nil, err
	}
	// The delta chain broke; one full frame re-anchors it.
	d, err = c.StatusDelta(ctx, metricsMode, true)
	if err != nil {
		f.Reset()
		return nil, err
	}
	return f.Apply(d)
}

// LeaseBatch applies one grant wave through the node's batch endpoint.
func (c *Client) LeaseBatch(ctx context.Context, b *GrantBatch) (*GrantBatchAck, error) {
	reply, err := c.roundTrip(ctx, http.MethodPost, PathPrefix+"lease_batch", b, KindGrantBatchAck)
	if err != nil {
		return nil, err
	}
	return reply.(*GrantBatchAck), nil
}

// Lease extends a budget grant to the node.
func (c *Client) Lease(ctx context.Context, g *LeaseGrant) (*LeaseAck, error) {
	reply, err := c.roundTrip(ctx, http.MethodPost, PathPrefix+"lease", g, KindLeaseAck)
	if err != nil {
		return nil, err
	}
	return reply.(*LeaseAck), nil
}

// Reconfigure applies a live configuration change to the node's daemon.
func (c *Client) Reconfigure(ctx context.Context, rc *Reconfigure) (*ReconfigureAck, error) {
	reply, err := c.roundTrip(ctx, http.MethodPost, PathPrefix+"reconfigure", rc, KindReconfigureAck)
	if err != nil {
		return nil, err
	}
	return reply.(*ReconfigureAck), nil
}

// Drain toggles the node's drain mode.
func (c *Client) Drain(ctx context.Context, on bool) (*DrainAck, error) {
	reply, err := c.roundTrip(ctx, http.MethodPost, PathPrefix+"drain", &Drain{On: on}, KindDrainAck)
	if err != nil {
		return nil, err
	}
	return reply.(*DrainAck), nil
}

// CoordClient speaks the coordinator side of the protocol — how nodes
// register themselves and operators inspect the room.
type CoordClient struct {
	base string
	http *http.Client
}

// NewCoordClient builds a client for a coordinator's address.
func NewCoordClient(addr string) *CoordClient {
	return &CoordClient{base: normalize(addr), http: http.DefaultClient}
}

func (c *CoordClient) roundTrip(ctx context.Context, method, path string, msg any, want string) (any, error) {
	nc := Client{base: c.base, http: c.http}
	return nc.roundTrip(ctx, method, path, msg, want)
}

// Register announces a node to the coordinator.
func (c *CoordClient) Register(ctx context.Context, node, addr string) (*RegisterAck, error) {
	reply, err := c.roundTrip(ctx, http.MethodPost, ClusterPrefix+"register", &Register{Node: node, Addr: addr}, KindRegisterAck)
	if err != nil {
		return nil, err
	}
	return reply.(*RegisterAck), nil
}

// Heartbeat keeps a node's registration alive.
func (c *CoordClient) Heartbeat(ctx context.Context, node string) (*HeartbeatAck, error) {
	reply, err := c.roundTrip(ctx, http.MethodPost, ClusterPrefix+"heartbeat", &Heartbeat{Node: node}, KindHeartbeatAck)
	if err != nil {
		return nil, err
	}
	return reply.(*HeartbeatAck), nil
}
