package powerapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestEnvelopeRoundTripsRoundID(t *testing.T) {
	data, err := MarshalRound(&Heartbeat{Node: "n1"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	env, msg, err := UnmarshalEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if env.Round != 42 || env.Kind != KindHeartbeat {
		t.Fatalf("envelope = %+v", env)
	}
	if msg.(*Heartbeat).Node != "n1" {
		t.Fatalf("body = %+v", msg)
	}

	// Round zero stays off the wire entirely.
	data, err = Marshal(&Heartbeat{Node: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "round") {
		t.Fatalf("round 0 serialised: %s", data)
	}
	if env, _, err := UnmarshalEnvelope(data); err != nil || env.Round != 0 {
		t.Fatalf("env = %+v, err = %v", env, err)
	}
}

// legacyEnvelope is the envelope shape peers decoded before the round
// ID existed. A new envelope must decode into it cleanly, with the
// round field simply ignored — the forward-compatibility contract that
// lets a new coordinator talk to an old node.
type legacyEnvelope struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

func TestOldDecoderIgnoresRoundField(t *testing.T) {
	data, err := MarshalRound(&Drain{On: true}, 99)
	if err != nil {
		t.Fatal(err)
	}
	var env legacyEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("old decoder rejected new envelope: %v", err)
	}
	if env.V != Version || env.Kind != KindDrain {
		t.Fatalf("old decoder misread envelope: %+v", env)
	}
	var body Drain
	if err := json.Unmarshal(env.Body, &body); err != nil || !body.On {
		t.Fatalf("old decoder misread body: %+v, %v", body, err)
	}
}

func TestEnvelopeToleratesUnknownFields(t *testing.T) {
	// Future envelope metadata must pass through today's decoder...
	wire := `{"v":1,"kind":"drain","body":{"on":true},"round":7,"hop_count":3,"shard":"b"}`
	env, msg, err := UnmarshalEnvelope([]byte(wire))
	if err != nil {
		t.Fatalf("unknown envelope fields rejected: %v", err)
	}
	if env.Round != 7 || !msg.(*Drain).On {
		t.Fatalf("env = %+v, msg = %+v", env, msg)
	}
	// ...while bodies stay strict: drift inside a message is still loud.
	wire = `{"v":1,"kind":"drain","body":{"on":true,"hop_count":3}}`
	if _, _, err := UnmarshalEnvelope([]byte(wire)); err == nil {
		t.Fatal("unknown body field accepted")
	}
}

func TestWithRoundContext(t *testing.T) {
	ctx := context.Background()
	if RoundFrom(ctx) != 0 {
		t.Fatal("fresh context carries a round")
	}
	if RoundFrom(nil) != 0 {
		t.Fatal("nil context carries a round")
	}
	ctx = WithRound(ctx, 5)
	if RoundFrom(ctx) != 5 {
		t.Fatalf("RoundFrom = %d, want 5", RoundFrom(ctx))
	}
	if got := RoundFrom(WithRound(context.Background(), 0)); got != 0 {
		t.Fatalf("zero round stored: %d", got)
	}
}

// TestClientPropagatesRound drives a Client against a fake node and
// checks both propagation paths: the ?round= query parameter on GETs
// and the envelope field on POSTs.
func TestClientPropagatesRound(t *testing.T) {
	var gotQuery, gotEnvelope uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "status"):
			gotQuery = queryRound(r)
			writeMsgRound(w, http.StatusOK, &NodeStatus{Node: "n"}, gotQuery)
		case strings.HasSuffix(r.URL.Path, "lease"):
			_, round, ok := readMsg(w, r, KindLeaseGrant)
			if !ok {
				return
			}
			gotEnvelope = round
			writeMsgRound(w, http.StatusOK, &LeaseAck{ID: 1, Applied: true}, round)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx := WithRound(context.Background(), 11)
	if _, err := c.Status(ctx); err != nil {
		t.Fatal(err)
	}
	if gotQuery != 11 {
		t.Fatalf("status round = %d, want 11", gotQuery)
	}
	if _, err := c.StatusWithMetrics(ctx, MetricsDelta); err != nil {
		t.Fatal(err)
	}
	if gotQuery != 11 {
		t.Fatalf("status-with-metrics round = %d, want 11", gotQuery)
	}
	if _, err := c.Lease(ctx, &LeaseGrant{ID: 1, LimitWatts: 40, TTLMS: 1000}); err != nil {
		t.Fatal(err)
	}
	if gotEnvelope != 11 {
		t.Fatalf("lease round = %d, want 11", gotEnvelope)
	}
	// Without a round on the context, nothing is stamped.
	if _, err := c.Status(context.Background()); err != nil {
		t.Fatal(err)
	}
	if gotQuery != 0 {
		t.Fatalf("round leaked onto bare context: %d", gotQuery)
	}
}
