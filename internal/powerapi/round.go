package powerapi

import "context"

// roundKey carries the control-round ID through a context.
type roundKey struct{}

// WithRound returns a context stamped with a control-round ID. The
// coordinator stamps the context once per reallocation round; Client
// propagates it onto every request it makes under that context (in the
// envelope for bodied requests, as a ?round= query parameter for GETs),
// and the node-side agent records its handling under the same ID — the
// join key for cross-node merged timelines.
func WithRound(ctx context.Context, round uint64) context.Context {
	if round == 0 {
		return ctx
	}
	return context.WithValue(ctx, roundKey{}, round)
}

// RoundFrom extracts the control-round ID from a context, zero if none.
func RoundFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	v, _ := ctx.Value(roundKey{}).(uint64)
	return v
}
