package powerapi

// Accumulate folds another node's energy summary into this one — the
// subtree rollup a mid-tier coordinator reports upward. Counters and
// joule figures sum exactly (the *UJ fields are integers for this);
// ElapsedSeconds takes the longest-running child, matching how the
// fleet rollup bounds a budget over wall-clock. Apps merge by name, so
// "gcc on 40 nodes" surfaces as one line with summed energy; anomaly
// counts merge by detector.
func (e *EnergyStatus) Accumulate(src *EnergyStatus) {
	if src == nil {
		return
	}
	if src.ElapsedSeconds > e.ElapsedSeconds {
		e.ElapsedSeconds = src.ElapsedSeconds
	}
	e.Intervals += src.Intervals
	e.OverIntervals += src.OverIntervals
	e.TotalUJ += src.TotalUJ
	e.UnattributedUJ += src.UnattributedUJ
	e.ExcludedUJ += src.ExcludedUJ
	e.OvershootUJ += src.OvershootUJ
	e.TotalJoules += src.TotalJoules
	e.OvershootJoules += src.OvershootJoules
	e.CostUSD += src.CostUSD
	e.CarbonGrams += src.CarbonGrams
	for _, app := range src.Apps {
		merged := false
		for i := range e.Apps {
			if e.Apps[i].Name == app.Name {
				e.Apps[i].TotalUJ += app.TotalUJ
				e.Apps[i].Joules += app.Joules
				// Fractions are per-node figures; a subtree-wide
				// fraction is recomputed from the summed energy.
				e.Apps[i].EnergyFrac = 0
				e.Apps[i].ShareFrac = 0
				e.Apps[i].Core = -1
				merged = true
				break
			}
		}
		if !merged {
			e.Apps = append(e.Apps, app)
		}
	}
	if e.TotalUJ > 0 {
		for i := range e.Apps {
			e.Apps[i].EnergyFrac = float64(e.Apps[i].TotalUJ) / float64(e.TotalUJ)
		}
	}
	if len(src.Anomalies) > 0 && e.Anomalies == nil {
		e.Anomalies = make(map[string]uint64, len(src.Anomalies))
	}
	for k, v := range src.Anomalies {
		e.Anomalies[k] += v
	}
}
