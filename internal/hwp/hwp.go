// Package hwp models Intel's Hardware-Managed P-states (the paper's
// Section 2.1 discussion of CPPC/HWP): with HWP enabled, the *hardware*
// picks each core's operating frequency autonomously within a
// software-provided [min, max] performance window, biased by an
// energy-performance preference (EPP) byte — 0 demands performance, 255
// begs for energy saving.
//
// The controller runs at hardware speed (default 1 ms, far below the OS
// daemon's 1 s) off the machine's tick hook, measures per-core utilisation
// from C0 residency, and programs the core's P-state request each interval:
//
//	target = min + (max − min) · clamp(util · boost, 0, 1)
//	boost  = 1 + (255 − EPP)/255          // 2x for EPP 0, 1x for EPP 255
//
// so a performance-biased core saturates its window at 50% load while an
// energy-biased one tracks load proportionally. Hints arrive through the
// IA32_HWP_REQUEST MSR, exactly how supervisory software talks to real
// HWP; while enabled, the controller's decisions overwrite any direct
// PERF_CTL requests (as on real silicon, where PERF_CTL is ignored under
// HWP).
package hwp

import (
	"fmt"
	"time"

	"repro/internal/msr"
	"repro/internal/sim"
	"repro/internal/units"
)

// hint is one core's HWP request state.
type hint struct {
	min, max units.Hertz
	epp      uint8
}

// Controller is the per-package HWP engine.
type Controller struct {
	m        *sim.Machine
	cores    []int
	interval time.Duration

	enabled bool
	hints   map[int]*hint
	acc     time.Duration
	prevC0  map[int]time.Duration
	smoothU map[int]float64
}

// ewmaAlpha smooths per-interval utilisation samples. Duty-cycled
// workloads produce near-binary samples at millisecond intervals; real HWP
// integrates demand over a sliding window rather than flapping between the
// window bounds. 0.02 per millisecond-scale interval gives a ~50 ms time
// constant, longer than typical interactive duty periods.
const ewmaAlpha = 0.02

// Enable turns on hardware-managed P-states for the given cores. Initial
// hints span the chip's full range with a balanced EPP (128).
func Enable(m *sim.Machine, cores []int, interval time.Duration) (*Controller, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("hwp: no cores")
	}
	if interval <= 0 {
		interval = time.Millisecond
	}
	spec := m.Chip().Freq
	c := &Controller{
		m:        m,
		cores:    append([]int(nil), cores...),
		interval: interval,
		enabled:  true,
		hints:    make(map[int]*hint),
		prevC0:   make(map[int]time.Duration),
		smoothU:  make(map[int]float64),
	}
	for _, core := range c.cores {
		if core < 0 || core >= m.Chip().NumCores {
			return nil, fmt.Errorf("hwp: core %d out of range", core)
		}
		c.hints[core] = &hint{min: spec.Min, max: spec.Max(), epp: 128}
		c.prevC0[core] = m.Counters(core).C0Time
	}
	c.wireMSRs()
	m.OnTick(c.tick)
	return c, nil
}

// wireMSRs exposes IA32_PM_ENABLE and IA32_HWP_REQUEST on the machine's
// simulated MSR device.
func (c *Controller) wireMSRs() {
	dev, ok := c.m.Device().(*msr.SimDevice)
	if !ok {
		return // file-backed or foreign device: hints via SetHint only
	}
	step := c.m.Chip().Freq.Step
	dev.OnRead(msr.IA32PmEnable, func(int) (uint64, error) {
		if c.enabled {
			return 1, nil
		}
		return 0, nil
	})
	dev.OnWrite(msr.IA32PmEnable, func(_ int, val uint64) error {
		c.enabled = val&1 != 0
		return nil
	})
	dev.OnRead(msr.IA32HwpRequest, func(cpu int) (uint64, error) {
		h, ok := c.hints[cpu]
		if !ok {
			return 0, fmt.Errorf("hwp: cpu %d not under HWP control", cpu)
		}
		return msr.EncodeHWPRequest(h.min, h.max, step, h.epp), nil
	})
	dev.OnWrite(msr.IA32HwpRequest, func(cpu int, val uint64) error {
		min, max, epp := msr.DecodeHWPRequest(val, step)
		return c.SetHint(cpu, min, max, epp)
	})
}

// SetHint programs one core's HWP window and EPP.
func (c *Controller) SetHint(core int, min, max units.Hertz, epp uint8) error {
	h, ok := c.hints[core]
	if !ok {
		return fmt.Errorf("hwp: core %d not under HWP control", core)
	}
	spec := c.m.Chip().Freq
	min = spec.Quantize(min)
	max = spec.Quantize(max)
	if min > max {
		return fmt.Errorf("hwp: min %v above max %v", min, max)
	}
	h.min, h.max, h.epp = min, max, epp
	return nil
}

// Hint reports a core's current window and EPP.
func (c *Controller) Hint(core int) (min, max units.Hertz, epp uint8, err error) {
	h, ok := c.hints[core]
	if !ok {
		return 0, 0, 0, fmt.Errorf("hwp: core %d not under HWP control", core)
	}
	return h.min, h.max, h.epp, nil
}

// Enabled reports whether autonomous selection is active.
func (c *Controller) Enabled() bool { return c.enabled }

// Utilization reports a core's smoothed load.
func (c *Controller) Utilization(core int) float64 { return c.smoothU[core] }

func (c *Controller) tick(dt time.Duration) {
	c.acc += dt
	if c.acc < c.interval {
		return
	}
	interval := c.acc
	c.acc = 0
	if !c.enabled {
		return
	}
	spec := c.m.Chip().Freq
	for _, core := range c.cores {
		c0 := c.m.Counters(core).C0Time
		util := float64(c0-c.prevC0[core]) / float64(interval)
		if util > 1 {
			util = 1
		}
		c.prevC0[core] = c0
		c.smoothU[core] += ewmaAlpha * (util - c.smoothU[core])

		h := c.hints[core]
		boost := 1 + float64(255-h.epp)/255
		frac := c.smoothU[core] * boost
		if frac > 1 {
			frac = 1
		}
		target := h.min + units.Hertz(frac*float64(h.max-h.min))
		// SetRequest only fails for out-of-range cores, validated at
		// Enable.
		_ = c.m.SetRequest(core, spec.Quantize(target))
	}
}
