package hwp

import (
	"math"
	"testing"
	"time"

	"repro/internal/msr"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func interactive(duty float64) workload.Profile {
	p := workload.MustByName("gcc")
	p.Phases = nil
	p.DutyCycle = duty
	p.DutyPeriod = 20 * time.Millisecond
	return p
}

func machineWith(t *testing.T, p workload.Profile, cores ...int) *sim.Machine {
	t.Helper()
	m, err := sim.New(platform.Skylake())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cores {
		if err := m.Pin(workload.NewInstance(p), c); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestEnableValidation(t *testing.T) {
	m := machineWith(t, interactive(1), 0)
	if _, err := Enable(m, nil, 0); err == nil {
		t.Error("no cores accepted")
	}
	if _, err := Enable(m, []int{99}, 0); err == nil {
		t.Error("out-of-range core accepted")
	}
}

func TestFullLoadSaturatesWindow(t *testing.T) {
	m := machineWith(t, interactive(1), 0)
	c, err := Enable(m, []int{0}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	if got := m.Request(0); got != m.Chip().Freq.Max() {
		t.Errorf("full load request = %v, want max", got)
	}
	if u := c.Utilization(0); u < 0.95 {
		t.Errorf("utilisation = %.2f", u)
	}
}

func TestEPPBiasesSelection(t *testing.T) {
	// At ~40% load, EPP 0 (performance) should run well above EPP 255
	// (energy saving).
	run := func(epp uint8) units.Hertz {
		m := machineWith(t, interactive(0.4), 0)
		c, err := Enable(m, []int{0}, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetHint(0, m.Chip().Freq.Min, m.Chip().Freq.Max(), epp); err != nil {
			t.Fatal(err)
		}
		m.Run(2 * time.Second)
		return m.Request(0)
	}
	perf := run(0)
	save := run(255)
	if perf <= save {
		t.Errorf("EPP 0 request %v not above EPP 255 request %v", perf, save)
	}
	if perf < 2*units.GHz {
		t.Errorf("performance-biased request %v too low for 40%% load (boost 2x)", perf)
	}
}

func TestHintsClampSelection(t *testing.T) {
	m := machineWith(t, interactive(1), 0)
	c, err := Enable(m, []int{0}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetHint(0, 1200*units.MHz, 1800*units.MHz, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	if got := m.Request(0); got != 1800*units.MHz {
		t.Errorf("request %v exceeds max hint", got)
	}
	// Idle-ish load floors at the min hint.
	m2 := machineWith(t, interactive(0.05), 0)
	c2, err := Enable(m2, []int{0}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.SetHint(0, 1200*units.MHz, 1800*units.MHz, 255); err != nil {
		t.Fatal(err)
	}
	m2.Run(time.Second)
	if got := m2.Request(0); got < 1200*units.MHz || got > 1400*units.MHz {
		t.Errorf("light-load request %v, want near the 1200 MHz min hint", got)
	}
}

func TestSetHintValidation(t *testing.T) {
	m := machineWith(t, interactive(1), 0)
	c, err := Enable(m, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetHint(5, 1*units.GHz, 2*units.GHz, 0); err == nil {
		t.Error("unmanaged core accepted")
	}
	if err := c.SetHint(0, 2*units.GHz, 1*units.GHz, 0); err == nil {
		t.Error("inverted window accepted")
	}
	if _, _, _, err := c.Hint(7); err == nil {
		t.Error("Hint on unmanaged core accepted")
	}
}

func TestHWPRequestMSRRoundTrip(t *testing.T) {
	m := machineWith(t, interactive(1), 0)
	c, err := Enable(m, []int{0}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	step := m.Chip().Freq.Step
	val := msr.EncodeHWPRequest(1000*units.MHz, 2000*units.MHz, step, 42)
	if err := m.Device().Write(0, msr.IA32HwpRequest, val); err != nil {
		t.Fatal(err)
	}
	min, max, epp, err := c.Hint(0)
	if err != nil {
		t.Fatal(err)
	}
	if min != 1000*units.MHz || max != 2000*units.MHz || epp != 42 {
		t.Errorf("hint after MSR write = %v/%v/%d", min, max, epp)
	}
	back, err := m.Device().Read(0, msr.IA32HwpRequest)
	if err != nil {
		t.Fatal(err)
	}
	bMin, bMax, bEpp := msr.DecodeHWPRequest(back, step)
	if bMin != min || bMax != max || bEpp != epp {
		t.Errorf("MSR read back = %v/%v/%d", bMin, bMax, bEpp)
	}
	// Reading the request of an unmanaged cpu errors.
	if _, err := m.Device().Read(3, msr.IA32HwpRequest); err == nil {
		t.Error("unmanaged cpu HWP read accepted")
	}
}

func TestPmEnableMSRDisablesAutonomy(t *testing.T) {
	m := machineWith(t, interactive(1), 0)
	c, err := Enable(m, []int{0}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Device().Read(0, msr.IA32PmEnable); v != 1 {
		t.Errorf("PM_ENABLE = %d, want 1", v)
	}
	if err := m.Device().Write(0, msr.IA32PmEnable, 0); err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Fatal("still enabled after PM_ENABLE clear")
	}
	// With HWP off, direct PERF_CTL requests stick.
	if err := m.SetRequest(0, 1300*units.MHz); err != nil {
		t.Fatal(err)
	}
	m.Run(100 * time.Millisecond)
	if got := m.Request(0); got != 1300*units.MHz {
		t.Errorf("request %v overwritten while HWP disabled", got)
	}
}

func TestEnergyBiasedHWPSavesPower(t *testing.T) {
	run := func(epp uint8) units.Joules {
		m := machineWith(t, interactive(0.3), 0)
		c, err := Enable(m, []int{0}, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetHint(0, m.Chip().Freq.Min, m.Chip().Freq.Max(), epp); err != nil {
			t.Fatal(err)
		}
		m.Run(5 * time.Second)
		return m.PackageEnergy()
	}
	if ePerf, eSave := run(0), run(255); eSave >= ePerf {
		t.Errorf("EPP 255 energy %v not below EPP 0 energy %v", eSave, ePerf)
	}
}

func TestUtilizationMeasurement(t *testing.T) {
	m := machineWith(t, interactive(0.5), 0)
	c, err := Enable(m, []int{0}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	if u := c.Utilization(0); math.Abs(u-0.5) > 0.15 {
		t.Errorf("utilisation = %.2f, want ~0.5", u)
	}
}
