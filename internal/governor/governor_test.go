package governor

import (
	"math"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// interactive returns a duty-cycled gcc-like profile.
func interactive(duty float64) workload.Profile {
	p := workload.MustByName("gcc")
	p.Phases = nil
	p.DutyCycle = duty
	p.DutyPeriod = 50 * time.Millisecond
	return p
}

func machineWith(t *testing.T, p workload.Profile, cores ...int) *sim.Machine {
	t.Helper()
	m, err := sim.New(platform.Skylake())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cores {
		if err := m.Pin(workload.NewInstance(p), c); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Kind: "bogus"},
		{Kind: Userspace},                  // missing frequency
		{Kind: Ondemand, UpThreshold: 1.5}, // threshold out of range
		{Kind: Conservative, UpThreshold: 0.3, DownThreshold: 0.8}, // inverted
	}
	for _, cfg := range cases {
		cfg2 := cfg
		cfg2.fill()
		if err := cfg2.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	m := machineWith(t, interactive(0.5), 0)
	if _, err := Attach(m, nil, Config{Kind: Performance}); err == nil {
		t.Error("no cores accepted")
	}
}

func TestStaticGovernors(t *testing.T) {
	chip := platform.Skylake()
	cases := []struct {
		cfg  Config
		want units.Hertz
	}{
		{Config{Kind: Performance}, chip.Freq.Max()},
		{Config{Kind: Powersave}, chip.Freq.Min},
		{Config{Kind: Userspace, UserspaceFreq: 1500 * units.MHz}, 1500 * units.MHz},
	}
	for _, c := range cases {
		m := machineWith(t, interactive(1), 0)
		if _, err := Attach(m, []int{0}, c.cfg); err != nil {
			t.Fatal(err)
		}
		m.Run(time.Second)
		if got := m.Request(0); got != c.want {
			t.Errorf("%s: request = %v, want %v", c.cfg.Kind, got, c.want)
		}
	}
}

func TestOndemandTracksLoad(t *testing.T) {
	// Fully-loaded core: ondemand requests max.
	m := machineWith(t, interactive(1), 0)
	g, err := Attach(m, []int{0}, Config{Kind: Ondemand})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2 * time.Second)
	if got := m.Request(0); got != m.Chip().Freq.Max() {
		t.Errorf("full load request = %v, want max", got)
	}
	if u := g.Utilization(0); u < 0.95 {
		t.Errorf("full load utilisation = %.2f", u)
	}

	// Lightly-loaded (30% duty) core: ondemand settles well below max.
	m2 := machineWith(t, interactive(0.3), 0)
	g2, err := Attach(m2, []int{0}, Config{Kind: Ondemand})
	if err != nil {
		t.Fatal(err)
	}
	m2.Run(2 * time.Second)
	if got := m2.Request(0); got >= m2.Chip().Freq.Nom {
		t.Errorf("light load request = %v, want well below nominal", got)
	}
	if u := g2.Utilization(0); math.Abs(u-0.3) > 0.1 {
		t.Errorf("utilisation = %.2f, want ~0.3", u)
	}
}

func TestOndemandJumpsAboveThreshold(t *testing.T) {
	m := machineWith(t, interactive(0.9), 0)
	if _, err := Attach(m, []int{0}, Config{Kind: Ondemand, UpThreshold: 0.8}); err != nil {
		t.Fatal(err)
	}
	m.Run(2 * time.Second)
	if got := m.Request(0); got != m.Chip().Freq.Max() {
		t.Errorf("90%% load should jump to max, got %v", got)
	}
}

func TestConservativeStepsGradually(t *testing.T) {
	m := machineWith(t, interactive(1), 0)
	if _, err := Attach(m, []int{0}, Config{Kind: Conservative}); err != nil {
		t.Fatal(err)
	}
	start := m.Request(0)
	m.Run(150 * time.Millisecond) // one sampling interval
	oneStep := m.Request(0)
	if oneStep <= start {
		t.Fatalf("conservative did not step up: %v -> %v", start, oneStep)
	}
	if oneStep-start > 200*units.MHz {
		t.Errorf("conservative stepped too far at once: %v", oneStep-start)
	}
	// Eventually reaches max under sustained load.
	m.Run(3 * time.Second)
	if got := m.Request(0); got != m.Chip().Freq.Max() {
		t.Errorf("sustained load should reach max, got %v", got)
	}
	// And steps back down when the load vanishes: replace with an idle
	// machine run by unpinning.
	m.Unpin(0)
	down := m.Request(0)
	m.Run(time.Second)
	if got := m.Request(0); got >= down {
		t.Errorf("conservative did not step down on idle: %v -> %v", down, got)
	}
}

// Energy story: on a 30%-duty interactive load, ondemand must use less
// energy than the performance governor while keeping most throughput.
func TestOndemandSavesEnergyOnLightLoad(t *testing.T) {
	run := func(kind Kind) (units.Joules, float64) {
		m := machineWith(t, interactive(0.3), 0)
		if _, err := Attach(m, []int{0}, Config{Kind: kind}); err != nil {
			t.Fatal(err)
		}
		m.Run(5 * time.Second)
		return m.PackageEnergy(), m.Counters(0).Instr
	}
	ePerf, iPerf := run(Performance)
	eOnd, iOnd := run(Ondemand)
	if eOnd >= ePerf {
		t.Errorf("ondemand energy %v not below performance %v", eOnd, ePerf)
	}
	// The duty-cycled workload completes its on-window work regardless of
	// frequency? No: lower frequency means fewer instructions in the same
	// window. Ondemand trades some throughput for energy.
	if iOnd > iPerf {
		t.Errorf("ondemand retired more instructions than performance: %g > %g", iOnd, iPerf)
	}
	if iOnd < iPerf*0.2 {
		t.Errorf("ondemand throughput collapsed: %g vs %g", iOnd, iPerf)
	}
}

func TestDutyCycledWorkloadSemantics(t *testing.T) {
	// A 50%-duty workload must retire about half the instructions of a
	// full-duty one at the same fixed frequency.
	run := func(duty float64) float64 {
		m := machineWith(t, interactive(duty), 0)
		if err := m.SetRequest(0, 2*units.GHz); err != nil {
			t.Fatal(err)
		}
		m.Run(2 * time.Second)
		return m.Counters(0).Instr
	}
	full := run(1)
	half := run(0.5)
	ratio := half / full
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("duty 0.5 retired %.2f of full duty, want ~0.5", ratio)
	}
	// And its C0 residency is about half.
	m := machineWith(t, interactive(0.5), 0)
	m.Run(2 * time.Second)
	c0 := m.Counters(0).C0Time
	if math.Abs(c0.Seconds()-1.0) > 0.1 {
		t.Errorf("C0 residency = %v, want ~1s of 2s", c0)
	}
	// Off-duty cores draw idle power: package energy sits between idle and
	// fully-busy.
	idle := machineWith(t, interactive(0.5)) // nothing pinned
	idle.Run(2 * time.Second)
	busy := machineWith(t, interactive(1), 0)
	busy.Run(2 * time.Second)
	if !(m.PackageEnergy() > idle.PackageEnergy() && m.PackageEnergy() < busy.PackageEnergy()) {
		t.Errorf("duty-cycled energy %v not between idle %v and busy %v",
			m.PackageEnergy(), idle.PackageEnergy(), busy.PackageEnergy())
	}
}
