// Package governor implements Linux cpufreq-style OS frequency governors
// over the simulated machine — the software heuristics the paper's
// background section contrasts with its policies (Section 2.2): they watch
// per-core utilisation (C0 residency) and pick the next P-state, with no
// notion of power limits or application priority.
//
// Implemented governors: performance (pin to max), powersave (pin to min),
// userspace (operator-chosen fixed frequency — the governor the paper uses
// so its daemon can set P-states directly), ondemand (jump to max above the
// up-threshold, else scale proportionally to load), and conservative
// (gradual steps up and down).
package governor

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Kind selects the governor heuristic.
type Kind string

// The supported governors.
const (
	Performance  Kind = "performance"
	Powersave    Kind = "powersave"
	Userspace    Kind = "userspace"
	Ondemand     Kind = "ondemand"
	Conservative Kind = "conservative"
)

// Config parameterises a per-core governor.
type Config struct {
	Kind Kind

	// Interval is the sampling period (default 100 ms, Linux's
	// conventional rate).
	Interval time.Duration

	// UserspaceFreq is the fixed frequency for the userspace governor.
	UserspaceFreq units.Hertz

	// UpThreshold is the utilisation above which ondemand jumps to the
	// maximum and conservative steps up (default 0.8).
	UpThreshold float64

	// DownThreshold is the utilisation below which conservative steps
	// down (default 0.3).
	DownThreshold float64

	// StepFraction is conservative's step as a fraction of the maximum
	// frequency (default 0.05, Linux's freq_step).
	StepFraction float64
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.UpThreshold <= 0 {
		c.UpThreshold = 0.8
	}
	if c.DownThreshold <= 0 {
		c.DownThreshold = 0.3
	}
	if c.StepFraction <= 0 {
		c.StepFraction = 0.05
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch c.Kind {
	case Performance, Powersave, Ondemand, Conservative:
	case Userspace:
		if c.UserspaceFreq <= 0 {
			return fmt.Errorf("governor: userspace needs a frequency")
		}
	default:
		return fmt.Errorf("governor: unknown kind %q", c.Kind)
	}
	if c.UpThreshold < 0 || c.UpThreshold > 1 || c.DownThreshold < 0 || c.DownThreshold > 1 {
		return fmt.Errorf("governor: thresholds outside [0,1]")
	}
	if c.DownThreshold >= c.UpThreshold && c.Kind == Conservative {
		return fmt.Errorf("governor: down threshold %g not below up threshold %g",
			c.DownThreshold, c.UpThreshold)
	}
	return nil
}

// Manager runs one governor instance per managed core.
type Manager struct {
	m     *sim.Machine
	cfg   Config
	cores []int

	acc     time.Duration
	prevC0  []time.Duration
	lastUtl []float64
}

// Attach installs the governor on the given cores of m and registers its
// sampling loop on the machine's tick hook. The initial P-state is applied
// immediately.
func Attach(m *sim.Machine, cores []int, cfg Config) (*Manager, error) {
	cfg.fill()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("governor: no cores")
	}
	g := &Manager{
		m:       m,
		cfg:     cfg,
		cores:   append([]int(nil), cores...),
		prevC0:  make([]time.Duration, len(cores)),
		lastUtl: make([]float64, len(cores)),
	}
	spec := m.Chip().Freq
	for i, core := range g.cores {
		var init units.Hertz
		switch cfg.Kind {
		case Performance, Ondemand:
			init = spec.Max()
		case Powersave:
			init = spec.Min
		case Userspace:
			init = cfg.UserspaceFreq
		case Conservative:
			init = spec.Nom
		}
		if err := m.SetRequest(core, init); err != nil {
			return nil, err
		}
		g.prevC0[i] = m.Counters(core).C0Time
	}
	m.OnTick(g.tick)
	return g, nil
}

// Utilization reports the managed core's load over the last completed
// sampling interval.
func (g *Manager) Utilization(slot int) float64 {
	if slot < 0 || slot >= len(g.lastUtl) {
		return 0
	}
	return g.lastUtl[slot]
}

func (g *Manager) tick(dt time.Duration) {
	g.acc += dt
	if g.acc < g.cfg.Interval {
		return
	}
	interval := g.acc
	g.acc = 0
	spec := g.m.Chip().Freq
	for i, core := range g.cores {
		c0 := g.m.Counters(core).C0Time
		util := float64(c0-g.prevC0[i]) / float64(interval)
		if util > 1 {
			util = 1
		}
		g.prevC0[i] = c0
		g.lastUtl[i] = util

		var next units.Hertz
		cur := g.m.Request(core)
		switch g.cfg.Kind {
		case Performance:
			next = spec.Max()
		case Powersave:
			next = spec.Min
		case Userspace:
			next = g.cfg.UserspaceFreq
		case Ondemand:
			// Linux ondemand: jump to max above the threshold, otherwise
			// pick the frequency proportional to load with headroom.
			if util >= g.cfg.UpThreshold {
				next = spec.Max()
			} else {
				next = units.Hertz(util / g.cfg.UpThreshold * float64(spec.Max()))
			}
		case Conservative:
			step := units.Hertz(g.cfg.StepFraction * float64(spec.Max()))
			switch {
			case util >= g.cfg.UpThreshold:
				next = cur + step
			case util <= g.cfg.DownThreshold:
				next = cur - step
			default:
				next = cur
			}
		}
		next = spec.Quantize(next)
		if next != cur {
			// SetRequest only fails for out-of-range cores, which Attach
			// has already validated.
			_ = g.m.SetRequest(core, next)
		}
	}
}
