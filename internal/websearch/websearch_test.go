package websearch

import (
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func nineCores() []int { return []int{0, 1, 2, 3, 4, 5, 6, 7, 8} }

func newAttached(t *testing.T, cfg Config, limit units.Watts, withBurn bool) (*sim.Machine, *App) {
	t.Helper()
	m, err := sim.New(platform.Skylake())
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Attach(m); err != nil {
		t.Fatal(err)
	}
	for _, core := range cfg.Cores {
		if err := m.SetRequest(core, m.Chip().Freq.Max()); err != nil {
			t.Fatal(err)
		}
	}
	if withBurn {
		if err := m.Pin(workload.NewInstance(workload.CPUBurn), 9); err != nil {
			t.Fatal(err)
		}
		if err := m.SetRequest(9, m.Chip().Freq.Max()); err != nil {
			t.Fatal(err)
		}
	}
	if limit > 0 {
		m.SetPowerLimit(limit)
	}
	return m, a
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Users: 0, Cores: nineCores()}); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := New(Config{Users: 10}); err == nil {
		t.Error("no cores accepted")
	}
	if _, err := New(Config{Users: 10, Cores: []int{1, 1}}); err == nil {
		t.Error("duplicate cores accepted")
	}
}

func TestAttachTwiceFails(t *testing.T) {
	m, err := sim.New(platform.Skylake())
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Users: 10, Cores: []int{0}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Attach(m); err != nil {
		t.Fatal(err)
	}
	if err := a.Attach(m); err == nil {
		t.Error("double attach accepted")
	}
}

func TestAttachFailsOnOccupiedCore(t *testing.T) {
	m, err := sim.New(platform.Skylake())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(workload.NewInstance(workload.MustByName("gcc")), 0); err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Users: 10, Cores: []int{0}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Attach(m); err == nil {
		t.Error("attach over occupied core accepted")
	}
}

func TestServesRequests(t *testing.T) {
	cfg := Config{Users: 50, Cores: nineCores(), Seed: 42}
	m, a := newAttached(t, cfg, 0, false)
	m.Run(10 * time.Second)
	if a.Completed() < 100 {
		t.Fatalf("only %d requests completed in 10s", a.Completed())
	}
	if a.Throughput() <= 0 {
		t.Error("zero throughput")
	}
	p50 := a.LatencyPercentile(50)
	p90 := a.LatencyPercentile(90)
	if p50 <= 0 || p90 < p50 {
		t.Errorf("latency percentiles: p50=%g p90=%g", p50, p90)
	}
	// At light load latency should be near the bare service time
	// (25e6 cycles / 2.5 GHz = 10 ms).
	if p50 > 0.05 {
		t.Errorf("light-load p50 = %gs, want near 10ms", p50)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() (int, float64) {
		cfg := Config{Users: 50, Cores: nineCores(), Seed: 7}
		m, a := newAttached(t, cfg, 0, false)
		m.Run(5 * time.Second)
		return a.Completed(), a.LatencyPercentile(90)
	}
	c1, p1 := run()
	c2, p2 := run()
	if c1 != c2 || p1 != p2 {
		t.Errorf("non-deterministic: (%d,%g) vs (%d,%g)", c1, p1, c2, p2)
	}
}

func TestThrottlingRaisesLatency(t *testing.T) {
	p90At := func(req units.Hertz) float64 {
		cfg := Config{Users: 300, Cores: nineCores(), Seed: 11}
		m, a := newAttached(t, cfg, 0, false)
		for _, core := range cfg.Cores {
			if err := m.SetRequest(core, req); err != nil {
				t.Fatal(err)
			}
		}
		m.Run(5 * time.Second) // warm up
		a.ResetStats()
		m.Run(20 * time.Second)
		return a.LatencyPercentile(90)
	}
	fast := p90At(2500 * units.MHz)
	slow := p90At(1300 * units.MHz)
	if slow <= fast*1.5 {
		t.Errorf("throttled p90 %gs should be well above fast p90 %gs", slow, fast)
	}
}

// The paper's Figure 5: under a low RAPL limit, colocating cpuburn must
// raise websearch p90 latency substantially versus running alone at the
// same limit.
func TestColocationInterferenceUnderRAPL(t *testing.T) {
	p90 := func(withBurn bool) float64 {
		cfg := Config{Users: 300, Cores: nineCores(), Seed: 3}
		m, a := newAttached(t, cfg, 40, withBurn)
		m.Run(5 * time.Second)
		a.ResetStats()
		m.Run(20 * time.Second)
		return a.LatencyPercentile(90)
	}
	alone := p90(false)
	colocated := p90(true)
	if colocated <= alone*1.3 {
		t.Errorf("colocated p90 %gs should exceed alone %gs by >30%%", colocated, alone)
	}
}

func TestResetStatsKeepsQueueState(t *testing.T) {
	cfg := Config{Users: 50, Cores: nineCores(), Seed: 42}
	m, a := newAttached(t, cfg, 0, false)
	m.Run(5 * time.Second)
	doneBefore := a.Completed()
	a.ResetStats()
	if a.LatencyPercentile(90) != 0 {
		t.Error("stats not cleared")
	}
	m.Run(5 * time.Second)
	if a.Completed() <= doneBefore {
		t.Error("service stopped after ResetStats")
	}
}

func TestInFlightBounded(t *testing.T) {
	cfg := Config{Users: 30, Cores: []int{0, 1}, Seed: 9}
	m, a := newAttached(t, cfg, 0, false)
	for i := 0; i < 5000; i++ {
		m.Step()
		if n := a.InFlight(); n > cfg.Users {
			t.Fatalf("in-flight %d exceeds closed-loop population %d", n, cfg.Users)
		}
	}
}

func TestOfferedLoad(t *testing.T) {
	cfg := Config{Users: 300, Cores: nineCores()}
	lo := cfg.OfferedLoad(2500 * units.MHz)
	hi := cfg.OfferedLoad(1000 * units.MHz)
	if lo <= 0 || hi <= lo {
		t.Errorf("offered load: lo=%g hi=%g", lo, hi)
	}
	if cfg.OfferedLoad(0) != 0 {
		t.Error("zero frequency load should be 0")
	}
}

func TestProfileValid(t *testing.T) {
	if err := Profile.Validate(); err != nil {
		t.Error(err)
	}
	if Profile.AVX {
		t.Error("websearch should not be AVX")
	}
}
