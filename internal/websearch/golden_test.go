package websearch

import (
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// goldenCell pins the exact p50/p90/p99 series produced by the original
// standalone websearch implementation (captured before the port to
// internal/svc). The adapter must reproduce these bit-for-bit: the
// closed-loop svc engine consumes randomness in the same order and
// schedules the same FIFO/core-slot drain, so any divergence here means
// Figures 5/12/13 no longer reproduce.
type goldenCell struct {
	seed      int64
	limit     units.Watts
	completed int
	p50       float64
	p90       float64
	p99       float64
	mean      float64
}

var goldenSeries = []goldenCell{
	{1, 55, 1617, 0.0089999999999999993, 0.029999999999999999, 0.058999999999999997, 0.01244573643410851},
	{1, 42, 1559, 0.010999999999999999, 0.035000000000000003, 0.072999999999999995, 0.015065775950667994},
	{1, 35, 1569, 0.012999999999999999, 0.043999999999999997, 0.090149999999999966, 0.018855983772819433},
	{2, 55, 1601, 0.0080000000000000002, 0.029000000000000001, 0.056379999999999889, 0.012481670061099751},
	{2, 42, 1538, 0.01, 0.035999999999999997, 0.073830000000000034, 0.01530744680851061},
	{2, 35, 1552, 0.012999999999999999, 0.047, 0.09101999999999999, 0.019819999999999987},
	{7, 55, 1550, 0.0080000000000000002, 0.029000000000000005, 0.056000000000000001, 0.012433637284701097},
	{7, 42, 1525, 0.01, 0.035000000000000003, 0.069800000000000181, 0.015380753138075269},
	{7, 35, 1516, 0.012, 0.043999999999999997, 0.086220000000000019, 0.018744680851063823},
}

func TestGoldenSeries(t *testing.T) {
	for _, g := range goldenSeries {
		m, err := sim.New(platform.Skylake())
		if err != nil {
			t.Fatal(err)
		}
		a, err := New(Config{Users: 120, Cores: []int{0, 1, 2, 3, 4, 5, 6, 7}, Seed: g.seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Attach(m); err != nil {
			t.Fatal(err)
		}
		if err := m.Pin(workload.NewInstance(workload.CPUBurn), 9); err != nil {
			t.Fatal(err)
		}
		m.SetPowerLimit(g.limit)
		m.Run(3 * time.Second)
		a.ResetStats()
		m.Run(5 * time.Second)
		if got := a.Completed(); got != g.completed {
			t.Errorf("seed=%d limit=%v: completed=%d, golden %d", g.seed, g.limit, got, g.completed)
		}
		for _, pc := range []struct {
			p    float64
			want float64
		}{{50, g.p50}, {90, g.p90}, {99, g.p99}} {
			if got := a.LatencyPercentile(pc.p); got != pc.want {
				t.Errorf("seed=%d limit=%v: p%g=%.17g, golden %.17g", g.seed, g.limit, pc.p, got, pc.want)
			}
		}
		if got := a.MeanLatency(); got != g.mean {
			t.Errorf("seed=%d limit=%v: mean=%.17g, golden %.17g", g.seed, g.limit, got, g.mean)
		}
	}
}
