// Package websearch models the paper's latency-sensitive workload
// (CloudSuite websearch, Figures 5, 12 and 13): a closed-loop
// interactive service with N users who alternate between thinking and
// submitting search requests to a pool of serving cores.
//
// Each request carries an exponentially distributed service demand in
// *cycles*; the serving cores drain demand at their current effective
// frequency, so throttling the cores (by RAPL or by a policy) directly
// stretches service times and — through queueing — blows up tail latency.
// This reproduces the paper's central latency result: a single colocated
// power virus forces the limiter to throttle the serving cores and p90
// latency more than doubles at low power limits.
//
// The model attaches to a sim.Machine: it pins a power profile on each
// serving core (so the cores draw realistic power and appear busy to the
// telemetry) and advances the queueing state from the machine's tick hook.
package websearch

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// Profile is the power/performance stand-in pinned to each serving core.
// Websearch is moderately memory-bound and not AVX-heavy.
var Profile = workload.Profile{
	Name:              "websearch",
	BaseCPI:           1.0,
	MemStall:          0.15e-9,
	Activity:          0.95,
	TotalInstructions: 1e15, // effectively endless service loop
}

// Config parameterises the closed-loop model.
type Config struct {
	Users         int           // concurrent users (the paper uses 300)
	ThinkTime     time.Duration // mean exponential think time (default 600 ms)
	ServiceCycles float64       // mean exponential demand per request in cycles (default 25e6)
	Cores         []int         // serving cores on the machine
	Seed          int64         // RNG seed
}

func (c *Config) fill() {
	if c.ThinkTime <= 0 {
		c.ThinkTime = 600 * time.Millisecond
	}
	if c.ServiceCycles <= 0 {
		c.ServiceCycles = 25e6
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Users <= 0 {
		return fmt.Errorf("websearch: Users must be positive")
	}
	if len(c.Cores) == 0 {
		return fmt.Errorf("websearch: no serving cores")
	}
	seen := make(map[int]bool)
	for _, core := range c.Cores {
		if seen[core] {
			return fmt.Errorf("websearch: duplicate core %d", core)
		}
		seen[core] = true
	}
	return nil
}

// request is one in-flight search.
type request struct {
	submitted time.Duration
	remaining float64 // cycles of demand left
}

// wakeEvent schedules a thinking user's next submission.
type wakeEvent struct {
	at time.Duration
}

type wakeHeap []wakeEvent

func (h wakeHeap) Len() int            { return len(h) }
func (h wakeHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h wakeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wakeHeap) Push(x interface{}) { *h = append(*h, x.(wakeEvent)) }
func (h *wakeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// App is the running websearch model.
type App struct {
	cfg Config
	rng *rand.Rand
	m   *sim.Machine

	now       time.Duration
	thinkers  wakeHeap
	queue     []*request
	inService []*request // one slot per serving core
	latencies []float64  // completed request latencies in seconds
	completed int
}

// New builds the model; call Attach to wire it to a machine.
func New(cfg Config) (*App, error) {
	cfg.fill()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &App{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		inService: make([]*request, len(cfg.Cores)),
	}
	// All users start thinking with staggered first submissions so the
	// warm-up is smooth.
	for i := 0; i < cfg.Users; i++ {
		heap.Push(&a.thinkers, wakeEvent{at: a.expDuration(cfg.ThinkTime)})
	}
	return a, nil
}

// Attach pins the websearch power profile to each serving core of m and
// registers the queueing model on the machine's tick hook.
func (a *App) Attach(m *sim.Machine) error {
	if a.m != nil {
		return fmt.Errorf("websearch: already attached")
	}
	for _, core := range a.cfg.Cores {
		if err := m.Pin(workload.NewInstance(Profile), core); err != nil {
			return fmt.Errorf("websearch: %w", err)
		}
	}
	a.m = m
	m.OnTick(a.tick)
	return nil
}

func (a *App) expDuration(mean time.Duration) time.Duration {
	return time.Duration(a.rng.ExpFloat64() * float64(mean))
}

// tick advances the queueing model by dt using the machine's current
// effective core frequencies.
func (a *App) tick(dt time.Duration) {
	a.now += dt
	// Users whose think time expired submit a request.
	for len(a.thinkers) > 0 && a.thinkers[0].at <= a.now {
		heap.Pop(&a.thinkers)
		a.queue = append(a.queue, &request{
			submitted: a.now,
			remaining: a.rng.ExpFloat64() * a.cfg.ServiceCycles,
		})
	}
	// Each serving core drains cycles from its request, picking up new
	// work from the shared queue as requests complete.
	for slot, core := range a.cfg.Cores {
		budget := a.m.EffectiveFreq(core).Cycles(dt)
		for budget > 0 {
			req := a.inService[slot]
			if req == nil {
				if len(a.queue) == 0 {
					break
				}
				req = a.queue[0]
				a.queue = a.queue[1:]
				a.inService[slot] = req
			}
			if req.remaining > budget {
				req.remaining -= budget
				budget = 0
				break
			}
			budget -= req.remaining
			a.complete(req)
			a.inService[slot] = nil
		}
	}
}

func (a *App) complete(req *request) {
	a.latencies = append(a.latencies, (a.now - req.submitted).Seconds())
	a.completed++
	heap.Push(&a.thinkers, wakeEvent{at: a.now + a.expDuration(a.cfg.ThinkTime)})
}

// Completed reports the number of requests finished so far.
func (a *App) Completed() int { return a.completed }

// InFlight reports queued plus in-service requests.
func (a *App) InFlight() int {
	n := len(a.queue)
	for _, r := range a.inService {
		if r != nil {
			n++
		}
	}
	return n
}

// LatencyPercentile returns the p-th percentile of completed request
// latencies in seconds since the last ResetStats.
func (a *App) LatencyPercentile(p float64) float64 {
	return stats.Percentile(a.latencies, p)
}

// MeanLatency returns the mean completed latency in seconds.
func (a *App) MeanLatency() float64 { return stats.Mean(a.latencies) }

// Throughput returns completed requests per second of virtual time since
// the model started.
func (a *App) Throughput() float64 {
	s := a.now.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(a.completed) / s
}

// ResetStats clears the latency record (for discarding warm-up) without
// disturbing the queueing state.
func (a *App) ResetStats() { a.latencies = a.latencies[:0] }

// OfferedLoad estimates the utilisation of the serving pool at frequency f:
// demand rate divided by service capacity. Values near or above 1 mean
// saturation.
func (c Config) OfferedLoad(f units.Hertz) float64 {
	cfg := c
	cfg.fill()
	if f <= 0 || len(cfg.Cores) == 0 {
		return 0
	}
	serviceTime := cfg.ServiceCycles / float64(f)
	// Closed-loop arrival rate upper bound: Users / (think + service).
	lambda := float64(cfg.Users) / (cfg.ThinkTime.Seconds() + serviceTime)
	return lambda * serviceTime / float64(len(cfg.Cores))
}
