// Package websearch models the paper's latency-sensitive workload
// (CloudSuite websearch, Figures 5, 12 and 13): a closed-loop
// interactive service with N users who alternate between thinking and
// submitting search requests to a pool of serving cores.
//
// It is a thin adapter over the general latency-service subsystem in
// internal/svc, pinned to svc's closed-loop arrival mode. The adapter
// is bit-identical to the original standalone model: svc's closed loop
// consumes randomness in the same order (N initial think draws at
// construction, one service-demand draw per arrival, one think re-draw
// per completion), uses the same heap ordering, and drains the same
// FIFO queue per core slot by cycle budget — so every historical figure
// reproduces exactly (see TestGoldenSeries).
package websearch

import (
	"time"

	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/units"
	"repro/internal/workload"
)

// Profile is the power/performance stand-in pinned to each serving core.
// Websearch is moderately memory-bound and not AVX-heavy.
var Profile = workload.Profile{
	Name:              "websearch",
	BaseCPI:           1.0,
	MemStall:          0.15e-9,
	Activity:          0.95,
	TotalInstructions: 1e15, // effectively endless service loop
}

// Config parameterises the closed-loop model.
type Config struct {
	Users         int           // concurrent users (the paper uses 300)
	ThinkTime     time.Duration // mean exponential think time (default 600 ms)
	ServiceCycles float64       // mean exponential demand per request in cycles (default 25e6)
	Cores         []int         // serving cores on the machine
	Seed          int64         // RNG seed
}

// svcConfig maps the adapter's configuration onto the subsystem's.
func (c Config) svcConfig() svc.Config {
	return svc.Config{
		Name:          "websearch",
		Cores:         c.Cores,
		Seed:          c.Seed,
		Arrivals:      svc.Closed,
		Users:         c.Users,
		ThinkTime:     c.ThinkTime,
		ServiceCycles: c.ServiceCycles,
		RecordAll:     true, // percentiles over everything since ResetStats
		Profile:       Profile,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	return c.svcConfig().Validate()
}

// App is the running websearch model.
type App struct {
	model *svc.Model
	s     *svc.Service
}

// New builds the model; call Attach to wire it to a machine.
func New(cfg Config) (*App, error) {
	model, err := svc.NewModel(cfg.svcConfig())
	if err != nil {
		return nil, err
	}
	return &App{model: model, s: model.Services()[0]}, nil
}

// Attach pins the websearch power profile to each serving core of m and
// registers the queueing model on the machine's tick hook.
func (a *App) Attach(m *sim.Machine) error {
	return a.model.Attach(m)
}

// Service exposes the underlying latency service (for wiring the model
// into the daemon's SLO telemetry).
func (a *App) Service() *svc.Service { return a.s }

// Model exposes the underlying single-service model.
func (a *App) Model() *svc.Model { return a.model }

// Completed reports the number of requests finished so far.
func (a *App) Completed() int { return int(a.s.Completed()) }

// InFlight reports queued plus in-service requests.
func (a *App) InFlight() int { return a.s.InFlight() }

// LatencyPercentile returns the p-th percentile of completed request
// latencies in seconds since the last ResetStats.
func (a *App) LatencyPercentile(p float64) float64 { return a.s.LatencyPercentile(p) }

// MeanLatency returns the mean completed latency in seconds.
func (a *App) MeanLatency() float64 { return a.s.MeanLatency() }

// Throughput returns completed requests per second of virtual time since
// the model started.
func (a *App) Throughput() float64 { return a.s.Throughput() }

// ResetStats clears the latency record (for discarding warm-up) without
// disturbing the queueing state.
func (a *App) ResetStats() { a.s.ResetStats() }

// OfferedLoad estimates the utilisation of the serving pool at frequency f:
// demand rate divided by service capacity. Values near or above 1 mean
// saturation.
func (c Config) OfferedLoad(f units.Hertz) float64 {
	return c.svcConfig().OfferedLoad(f)
}
