// Package sched models single-core time sharing with CPU-share control
// (the paper's Section 4.3 and Figure 6): several applications multiplexed
// on one core, each granted a fraction of core time the way docker
// --cpu-quota / cgroups cpu shares grant it. The paper's observation — the
// core's average power is the time-weighted sum of the individual
// applications' solo power draws — emerges from the simulation rather than
// being assumed.
package sched

import (
	"fmt"
	"time"

	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

// Task is one time-shared application with its core-time allocation.
type Task struct {
	In       *workload.Instance
	Fraction float64 // quota mode: share of core time in (0, 1]
	Shares   float64 // share mode: relative weight

	compensate bool
	cpuTime    time.Duration
	budget     time.Duration // remaining budget within the current period
}

// mode selects how a core's tasks are allotted time.
type mode int

const (
	modeUnset  mode = iota
	modeQuota       // absolute core-time fractions (docker --cpu-quota)
	modeShares      // relative weights, work-conserving (cgroups cpu.shares)
)

// Core is one processor core multiplexing tasks.
type Core struct {
	chip   platform.Chip
	freq   units.Hertz
	ref    units.Hertz   // frequency the compensation baseline was set at
	period time.Duration // budget replenishment period
	slice  time.Duration // scheduling quantum
	mode   mode

	tasks    []*Task
	clock    time.Duration
	inPeriod time.Duration
	energy   units.Joules
	idleTime time.Duration
}

// New builds a time-shared core on the chip at a fixed operating frequency.
func New(chip platform.Chip, freq units.Hertz) (*Core, error) {
	if err := chip.Validate(); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	q := chip.Freq.Quantize(freq)
	if q != freq {
		return nil, fmt.Errorf("sched: frequency %v is not a valid P-state (nearest %v)", freq, q)
	}
	return &Core{
		chip:   chip,
		freq:   freq,
		ref:    freq,
		period: 100 * time.Millisecond,
		slice:  time.Millisecond,
	}, nil
}

// SetFrequency changes the core's operating frequency mid-run, modelling a
// power limiter throttling the core under the scheduler.
func (c *Core) SetFrequency(f units.Hertz) error {
	q := c.chip.Freq.Quantize(f)
	if q != f {
		return fmt.Errorf("sched: frequency %v is not a valid P-state (nearest %v)", f, q)
	}
	c.freq = f
	return nil
}

// Frequency reports the core's current operating frequency.
func (c *Core) Frequency() units.Hertz { return c.freq }

// Add registers a task with an absolute core-time fraction (quota mode,
// docker --cpu-quota semantics; leftover time idles the core). The
// fractions of all tasks may not exceed 1. Quota and share tasks may not
// mix on one core.
func (c *Core) Add(in *workload.Instance, fraction float64) error {
	if c.mode == modeShares {
		return fmt.Errorf("sched: cannot mix quota tasks with share tasks")
	}
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("sched: fraction %g outside (0,1]", fraction)
	}
	if err := in.Profile.Validate(); err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	var sum float64
	for _, t := range c.tasks {
		sum += t.Fraction
	}
	if sum+fraction > 1+1e-9 {
		return fmt.Errorf("sched: fractions exceed 1 (%.2f + %.2f)", sum, fraction)
	}
	c.mode = modeQuota
	c.tasks = append(c.tasks, &Task{In: in, Fraction: fraction})
	return nil
}

// AddShares registers a task with a relative weight (share mode, cgroups
// cpu.shares semantics): the core is work-conserving and each task receives
// shares/Σshares of its time each period. Quota and share tasks may not mix
// on one core.
func (c *Core) AddShares(in *workload.Instance, shares float64) error {
	if c.mode == modeQuota {
		return fmt.Errorf("sched: cannot mix share tasks with quota tasks")
	}
	if shares <= 0 {
		return fmt.Errorf("sched: shares must be positive, got %g", shares)
	}
	if err := in.Profile.Validate(); err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	c.mode = modeShares
	c.tasks = append(c.tasks, &Task{In: in, Shares: shares})
	return nil
}

// Compensate marks a share-mode task for throttle compensation — the
// paper's Section 4.3 case 2: "CPU scheduling can be modified to give
// low-demand applications more runtime, by dynamically adjusting their CPU
// shares at runtime to compensate for CPU throttling". Each period the
// task's effective weight is scaled by refFreq/currentFreq (where refFreq
// is the frequency at core construction), so its retired work tracks the
// unthrottled rate at the expense of uncompensated tasks.
func (c *Core) Compensate(task int) error {
	if c.mode != modeShares {
		return fmt.Errorf("sched: compensation requires share mode")
	}
	if task < 0 || task >= len(c.tasks) {
		return fmt.Errorf("sched: task %d out of range", task)
	}
	c.tasks[task].compensate = true
	return nil
}

// Tasks returns the registered tasks.
func (c *Core) Tasks() []*Task { return c.tasks }

// Run advances the core for a duration of virtual time, multiplexing tasks
// quantum by quantum. Within each period, each task receives
// fraction*period of core time; the quantum always goes to the runnable
// task with the most remaining budget, which interleaves tasks roughly
// proportionally; leftover time idles the core (fractions are quotas, not
// relative weights, matching docker --cpu-quota semantics).
func (c *Core) Run(d time.Duration) {
	end := c.clock + d
	for c.clock < end {
		if c.inPeriod == 0 {
			c.refillBudgets()
		}
		q := c.slice
		if rem := c.period - c.inPeriod; rem < q {
			q = rem
		}
		if rem := end - c.clock; rem < q {
			q = rem
		}
		var pick *Task
		for _, t := range c.tasks {
			if t.budget <= 0 {
				continue
			}
			if pick == nil || t.budget > pick.budget {
				pick = t
			}
		}
		if pick != nil {
			if pick.budget < q {
				q = pick.budget
			}
			pick.In.Advance(c.freq, q)
			pick.budget -= q
			pick.cpuTime += q
			p := c.chip.Power.CorePower(c.freq, pick.In.CurrentActivity())
			c.energy += p.Energy(q)
		} else {
			c.idleTime += q
			c.energy += c.chip.Power.IdleCorePower.Energy(q)
		}
		c.clock += q
		c.inPeriod += q
		if c.inPeriod >= c.period {
			c.inPeriod = 0
		}
	}
}

// refillBudgets computes each task's time budget for the next period.
func (c *Core) refillBudgets() {
	if c.mode == modeShares {
		var ssum float64
		for _, t := range c.tasks {
			ssum += t.Shares
		}
		// Compensated tasks get their base fraction scaled by the
		// throttling ratio (so their retired work tracks the unthrottled
		// rate); uncompensated tasks share whatever remains in base-share
		// proportion.
		scale := 1.0
		if c.freq > 0 && c.freq < c.ref {
			scale = float64(c.ref) / float64(c.freq)
		}
		var compSum, uncompShares float64
		fracs := make([]float64, len(c.tasks))
		for i, t := range c.tasks {
			base := t.Shares / ssum
			if t.compensate {
				fracs[i] = base * scale
				compSum += fracs[i]
			} else {
				uncompShares += t.Shares
			}
		}
		remaining := 1 - compSum
		if remaining < 0 {
			// Compensation demands exceed the core: scale the compensated
			// tasks back to fit and starve the rest.
			for i := range fracs {
				fracs[i] /= compSum
			}
			remaining = 0
		}
		for i, t := range c.tasks {
			if !t.compensate && uncompShares > 0 {
				fracs[i] = remaining * t.Shares / uncompShares
			}
			t.budget = time.Duration(fracs[i] * float64(c.period))
		}
		return
	}
	for _, t := range c.tasks {
		t.budget = time.Duration(t.Fraction * float64(c.period))
	}
}

// Elapsed reports total virtual time simulated.
func (c *Core) Elapsed() time.Duration { return c.clock }

// IdleTime reports time the core spent idle.
func (c *Core) IdleTime() time.Duration { return c.idleTime }

// Energy reports cumulative core energy.
func (c *Core) Energy() units.Joules { return c.energy }

// AveragePower reports mean core power over the simulated time.
func (c *Core) AveragePower() units.Watts {
	return c.energy.Power(c.clock)
}

// TaskCPUTime reports the core time received by task i.
func (c *Core) TaskCPUTime(i int) time.Duration {
	if i < 0 || i >= len(c.tasks) {
		return 0
	}
	return c.tasks[i].cpuTime
}

// SoloPower predicts the core power of running one profile alone (100%
// resident) at frequency f on this chip — the reference lines of Figure 6.
func SoloPower(chip platform.Chip, p workload.Profile, f units.Hertz) units.Watts {
	return chip.Power.CorePower(f, p.Activity)
}
