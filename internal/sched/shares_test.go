package sched

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
	"repro/internal/workload"
)

func coreBound() workload.Profile {
	p := workload.MustByName("exchange2")
	p.Phases = nil
	return p
}

func TestAddSharesProportionalAndWorkConserving(t *testing.T) {
	c := newCore(t, 3400*units.MHz)
	a := workload.NewInstance(coreBound())
	b := workload.NewInstance(coreBound())
	if err := c.AddShares(a, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddShares(b, 1); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Second)
	// Work-conserving: no idle time.
	if c.IdleTime() != 0 {
		t.Errorf("share mode idled %v", c.IdleTime())
	}
	fa := c.TaskCPUTime(0).Seconds() / 10
	fb := c.TaskCPUTime(1).Seconds() / 10
	if math.Abs(fa-0.75) > 0.01 || math.Abs(fb-0.25) > 0.01 {
		t.Errorf("cpu fractions = %.3f/%.3f, want 0.75/0.25", fa, fb)
	}
}

func TestAddSharesValidation(t *testing.T) {
	c := newCore(t, 3400*units.MHz)
	if err := c.AddShares(workload.NewInstance(coreBound()), 0); err == nil {
		t.Error("zero shares accepted")
	}
	if err := c.AddShares(workload.NewInstance(workload.Profile{}), 1); err == nil {
		t.Error("invalid profile accepted")
	}
	// Mixing modes fails both ways.
	if err := c.AddShares(workload.NewInstance(coreBound()), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(workload.NewInstance(coreBound()), 0.5); err == nil {
		t.Error("quota task accepted on share core")
	}
	c2 := newCore(t, 3400*units.MHz)
	if err := c2.Add(workload.NewInstance(coreBound()), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c2.AddShares(workload.NewInstance(coreBound()), 1); err == nil {
		t.Error("share task accepted on quota core")
	}
}

func TestSetFrequency(t *testing.T) {
	c := newCore(t, 3400*units.MHz)
	if err := c.SetFrequency(3412 * units.MHz); err == nil {
		t.Error("unquantised frequency accepted")
	}
	if err := c.SetFrequency(2550 * units.MHz); err != nil {
		t.Fatal(err)
	}
	if got := c.Frequency(); got != 2550*units.MHz {
		t.Errorf("Frequency = %v", got)
	}
}

func TestCompensateValidation(t *testing.T) {
	c := newCore(t, 3400*units.MHz)
	if err := c.Add(workload.NewInstance(coreBound()), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Compensate(0); err == nil {
		t.Error("compensation accepted in quota mode")
	}
	c2 := newCore(t, 3400*units.MHz)
	if err := c2.AddShares(workload.NewInstance(coreBound()), 1); err != nil {
		t.Fatal(err)
	}
	if err := c2.Compensate(5); err == nil {
		t.Error("out-of-range task accepted")
	}
	if err := c2.Compensate(0); err != nil {
		t.Error(err)
	}
}

// The paper's Section 4.3 case 2: under throttling, a compensated
// low-demand task's retired work tracks its unthrottled rate while the
// uncompensated co-runner absorbs the loss.
func TestThrottleCompensation(t *testing.T) {
	// Reference: both tasks at equal shares, full 3.4 GHz, 10 s.
	ref := newCore(t, 3400*units.MHz)
	refLD := workload.NewInstance(coreBound())
	refHD := workload.NewInstance(workload.MustByName("cactusBSSN"))
	if err := ref.AddShares(refLD, 1); err != nil {
		t.Fatal(err)
	}
	if err := ref.AddShares(refHD, 1); err != nil {
		t.Fatal(err)
	}
	ref.Run(10 * time.Second)
	refWork := refLD.TotalInstructions()

	// Throttled without compensation: LD loses proportionally.
	plain := newCore(t, 3400*units.MHz)
	plainLD := workload.NewInstance(coreBound())
	if err := plain.AddShares(plainLD, 1); err != nil {
		t.Fatal(err)
	}
	if err := plain.AddShares(workload.NewInstance(workload.MustByName("cactusBSSN")), 1); err != nil {
		t.Fatal(err)
	}
	if err := plain.SetFrequency(2550 * units.MHz); err != nil {
		t.Fatal(err)
	}
	plain.Run(10 * time.Second)

	// Throttled with compensation: LD's weight scales by 3400/2550.
	comp := newCore(t, 3400*units.MHz)
	compLD := workload.NewInstance(coreBound())
	compHD := workload.NewInstance(workload.MustByName("cactusBSSN"))
	if err := comp.AddShares(compLD, 1); err != nil {
		t.Fatal(err)
	}
	if err := comp.AddShares(compHD, 1); err != nil {
		t.Fatal(err)
	}
	if err := comp.Compensate(0); err != nil {
		t.Fatal(err)
	}
	if err := comp.SetFrequency(2550 * units.MHz); err != nil {
		t.Fatal(err)
	}
	comp.Run(10 * time.Second)

	// Compensated LD work is close to the unthrottled reference (the task
	// is core-bound, so time scaling cancels frequency scaling)...
	if ratio := compLD.TotalInstructions() / refWork; math.Abs(ratio-1) > 0.05 {
		t.Errorf("compensated work ratio = %.3f, want ~1", ratio)
	}
	// ...and clearly above the uncompensated run.
	if compLD.TotalInstructions() <= plainLD.TotalInstructions()*1.1 {
		t.Errorf("compensation ineffective: %.3g vs %.3g",
			compLD.TotalInstructions(), plainLD.TotalInstructions())
	}
	// The HD co-runner pays: less CPU time than the compensated task.
	if comp.TaskCPUTime(1) >= comp.TaskCPUTime(0) {
		t.Errorf("HD task did not pay: %v vs %v", comp.TaskCPUTime(1), comp.TaskCPUTime(0))
	}
}

// Compensation never fires above the reference frequency.
func TestCompensationInactiveAtFullSpeed(t *testing.T) {
	c := newCore(t, 3400*units.MHz)
	a := workload.NewInstance(coreBound())
	b := workload.NewInstance(coreBound())
	if err := c.AddShares(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddShares(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Compensate(0); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Second)
	fa := c.TaskCPUTime(0).Seconds()
	fb := c.TaskCPUTime(1).Seconds()
	if math.Abs(fa-fb) > 0.05 {
		t.Errorf("compensation active at full speed: %.2f vs %.2f", fa, fb)
	}
}
