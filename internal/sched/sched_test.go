package sched

import (
	"math"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/units"
	"repro/internal/workload"
)

func newCore(t *testing.T, f units.Hertz) *Core {
	t.Helper()
	c, err := New(platform.Ryzen(), f)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := platform.Ryzen()
	bad.NumCores = 0
	if _, err := New(bad, 3400*units.MHz); err == nil {
		t.Error("invalid chip accepted")
	}
	if _, err := New(platform.Ryzen(), 3412*units.MHz); err == nil {
		t.Error("unquantised frequency accepted")
	}
}

func TestAddValidation(t *testing.T) {
	c := newCore(t, 3400*units.MHz)
	gcc := workload.NewInstance(workload.MustByName("gcc"))
	if err := c.Add(gcc, 0); err == nil {
		t.Error("zero fraction accepted")
	}
	if err := c.Add(gcc, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if err := c.Add(workload.NewInstance(workload.Profile{}), 0.5); err == nil {
		t.Error("invalid profile accepted")
	}
	if err := c.Add(gcc, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(workload.NewInstance(workload.MustByName("leela")), 0.6); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestCPUTimeMatchesFractions(t *testing.T) {
	c := newCore(t, 3400*units.MHz)
	a := workload.NewInstance(workload.MustByName("cactusBSSN"))
	b := workload.NewInstance(workload.MustByName("gcc"))
	if err := c.Add(a, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(b, 0.3); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Second)
	if got := c.Elapsed(); got != 10*time.Second {
		t.Fatalf("Elapsed = %v", got)
	}
	fa := c.TaskCPUTime(0).Seconds() / 10
	fb := c.TaskCPUTime(1).Seconds() / 10
	if math.Abs(fa-0.5) > 0.01 || math.Abs(fb-0.3) > 0.01 {
		t.Errorf("cpu time fractions = %.3f, %.3f; want 0.5, 0.3", fa, fb)
	}
	idle := c.IdleTime().Seconds() / 10
	if math.Abs(idle-0.2) > 0.01 {
		t.Errorf("idle fraction = %.3f, want 0.2", idle)
	}
	if c.TaskCPUTime(5) != 0 {
		t.Error("out-of-range task time should be 0")
	}
}

// The paper's Figure 6 observation: average core power equals the
// time-weighted sum of the individual solo powers (plus the idle residual).
func TestPowerIsTimeWeightedSum(t *testing.T) {
	chip := platform.Ryzen()
	f := 3400 * units.MHz
	hd := workload.MustByName("cactusBSSN")
	ld := workload.MustByName("gcc")
	// Strip phases so solo power is exact.
	hd.Phases, ld.Phases = nil, nil

	c := newCore(t, f)
	if err := c.Add(workload.NewInstance(hd), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(workload.NewInstance(ld), 0.3); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Second)
	want := 0.5*float64(SoloPower(chip, hd, f)) +
		0.3*float64(SoloPower(chip, ld, f)) +
		0.2*float64(chip.Power.IdleCorePower)
	got := float64(c.AveragePower())
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("average power = %.3f W, want time-weighted %.3f W", got, want)
	}
}

// Power must rise monotonically as the varying app's share grows
// (Figure 6's x axis).
func TestPowerMonotoneInShares(t *testing.T) {
	chip := platform.Ryzen()
	_ = chip
	prev := -1.0
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		c := newCore(t, 3400*units.MHz)
		if err := c.Add(workload.NewInstance(workload.MustByName("cactusBSSN")), 0.5); err != nil {
			t.Fatal(err)
		}
		if err := c.Add(workload.NewInstance(workload.MustByName("gcc")), frac); err != nil {
			t.Fatal(err)
		}
		c.Run(5 * time.Second)
		p := float64(c.AveragePower())
		if p <= prev {
			t.Errorf("power not increasing at fraction %.1f: %.3f <= %.3f", frac, p, prev)
		}
		prev = p
	}
}

// Progress must be proportional to the granted fraction: the HD app at 50%
// retires half the instructions it would alone.
func TestProgressProportionalToFraction(t *testing.T) {
	solo := workload.NewInstance(workload.MustByName("exchange2"))
	c1 := newCore(t, 3400*units.MHz)
	if err := c1.Add(solo, 1.0); err != nil {
		t.Fatal(err)
	}
	c1.Run(5 * time.Second)

	half := workload.NewInstance(workload.MustByName("exchange2"))
	c2 := newCore(t, 3400*units.MHz)
	if err := c2.Add(half, 0.5); err != nil {
		t.Fatal(err)
	}
	c2.Run(5 * time.Second)

	ratio := half.TotalInstructions() / solo.TotalInstructions()
	if math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("instruction ratio = %.3f, want 0.5", ratio)
	}
}

func TestEmptyCoreIdles(t *testing.T) {
	chip := platform.Ryzen()
	c := newCore(t, 3400*units.MHz)
	c.Run(2 * time.Second)
	if c.IdleTime() != 2*time.Second {
		t.Errorf("idle = %v", c.IdleTime())
	}
	want := chip.Power.IdleCorePower
	if got := c.AveragePower(); math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("idle power = %v, want %v", got, want)
	}
}

func TestHigherFrequencyMoreInstructionsAndPower(t *testing.T) {
	run := func(f units.Hertz) (float64, float64) {
		c := newCore(t, f)
		in := workload.NewInstance(workload.MustByName("gcc"))
		if err := c.Add(in, 1.0); err != nil {
			t.Fatal(err)
		}
		c.Run(2 * time.Second)
		return in.TotalInstructions(), float64(c.AveragePower())
	}
	iLo, pLo := run(1700 * units.MHz)
	iHi, pHi := run(3400 * units.MHz)
	if iHi <= iLo || pHi <= pLo {
		t.Errorf("scaling broken: instr %g->%g power %g->%g", iLo, iHi, pLo, pHi)
	}
}
