package telemetry

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/platform"
)

// resilientSampler builds a primed resilient sampler over the machine's
// device wrapped by the fault injector, with the injector's clock driven
// by the machine so windows open and close as virtual time advances.
func resilientSampler(t *testing.T, chip platform.Chip, apps map[int]string, sched string, seed int64) (*fault.Injector, *Sampler, func(time.Duration) (Sample, error)) {
	t.Helper()
	m := machineWith(t, chip, apps)
	ss, err := fault.ParseSchedule(sched)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(ss, seed)
	inj.Drive(m)
	s, err := NewSampler(inj.WrapDevice(m.Device()), chip.NumCores, chip.Freq.Nom, chip.PerCorePower)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSockets(chip.Sockets()); err != nil {
		t.Fatal(err)
	}
	s.SetResilient(RetryPolicy{})
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	step := func(dt time.Duration) (Sample, error) {
		m.Run(dt)
		return s.Sample(dt)
	}
	return inj, s, step
}

// TestRecycledBuffersClassifyStuckCounter runs a stuck-MPERF fault
// against the batched resilient sampler and checks, interval by
// interval, that the recycled sample buffers never leak one core's (or
// one interval's) state into another: the healthy core classifies OK
// throughout, and the faulted core walks the exact status sequence the
// state machine prescribes — two Stale intervals separated by a
// Recovering probe — with its derived values zeroed, not carried over
// from the previous occupant of the buffer slot.
func TestRecycledBuffersClassifyStuckCounter(t *testing.T) {
	// Window [30ms, 70ms): the read at 30ms caches the still-true value
	// (stuck serves the value seen at first faulted access), so interval
	// 3 is clean; intervals 4 and 6 see a frozen MPERF under an advancing
	// APERF (torn → Stale); interval 5 and 7 are the first good-looking
	// read after a Stale verdict (→ Recovering); interval 8 on is clean.
	_, _, step := resilientSampler(t, platform.Skylake(),
		map[int]string{0: "gcc", 1: "cam4"},
		"at 30ms for 40ms stuck cpu=1 regs=MPERF", 1)

	want := []CoreStatus{
		1: StatusOK, 2: StatusOK, 3: StatusOK,
		4: StatusStale, 5: StatusRecovering, 6: StatusStale, 7: StatusRecovering,
		8: StatusOK, 9: StatusOK, 10: StatusOK,
	}
	for i := 1; i <= 10; i++ {
		samp, err := step(10 * time.Millisecond)
		if err != nil {
			t.Fatalf("interval %d: %v", i, err)
		}
		if st := samp.Cores[0].Status; st != StatusOK {
			t.Errorf("interval %d: healthy core 0 = %v, want ok", i, st)
		}
		if samp.Cores[0].ActiveFreq <= 0 {
			t.Errorf("interval %d: healthy core 0 freq = %v", i, samp.Cores[0].ActiveFreq)
		}
		if st := samp.Cores[1].Status; st != want[i] {
			t.Errorf("interval %d: faulted core 1 = %v, want %v", i, st, want[i])
		}
		if want[i] != StatusOK && (samp.Cores[1].ActiveFreq != 0 || samp.Cores[1].IPS != 0) {
			// An untrustworthy interval must present zeroed derived values;
			// anything else is the previous interval bleeding through the
			// recycled buffer.
			t.Errorf("interval %d: stale core leaked freq=%v ips=%v",
				i, samp.Cores[1].ActiveFreq, samp.Cores[1].IPS)
		}
	}
}

// TestRecycledBuffersClassifyTornRegisters freezes a seed-chosen half of
// one core's registers (the torn fault class) and checks that the
// inconsistency is detected as Stale — not passed through as plausible
// values — while the healthy core's classification is untouched across
// the recycled buffers, and that the core recovers once the window ends.
func TestRecycledBuffersClassifyTornRegisters(t *testing.T) {
	inj, _, step := resilientSampler(t, platform.Skylake(),
		map[int]string{0: "gcc", 1: "cam4"},
		// The seed is chosen so the per-register coin freezes at least one
		// of the counters the classifier cross-checks; the Effects assert
		// below keeps the choice honest if the rng sequence ever changes.
		"at 30ms for 40ms torn cpu=1", 3)

	sawStale := false
	var last CoreStatus
	for i := 1; i <= 10; i++ {
		samp, err := step(10 * time.Millisecond)
		if err != nil {
			t.Fatalf("interval %d: %v", i, err)
		}
		if st := samp.Cores[0].Status; st != StatusOK {
			t.Errorf("interval %d: healthy core 0 = %v, want ok", i, st)
		}
		if samp.Cores[1].Status == StatusStale {
			sawStale = true
			if samp.Cores[1].ActiveFreq != 0 || samp.Cores[1].IPS != 0 {
				t.Errorf("interval %d: stale core leaked freq=%v ips=%v",
					i, samp.Cores[1].ActiveFreq, samp.Cores[1].IPS)
			}
		}
		last = samp.Cores[1].Status
	}
	if inj.Effects(fault.ClassTorn) == 0 {
		t.Fatal("torn fault never perturbed a read; the test exercised nothing")
	}
	if !sawStale {
		t.Error("torn registers never classified Stale")
	}
	if last != StatusOK {
		t.Errorf("core 1 did not recover after the window: %v", last)
	}
}

// TestRecycledBuffersIsolatePackageFault freezes one socket's energy
// counter on a two-socket package and checks per-socket isolation across
// buffer reuse: the faulted socket goes Stale with its last good power
// carried forward, the other socket keeps reporting OK, and the
// package-level status is the worst of the two.
func TestRecycledBuffersIsolatePackageFault(t *testing.T) {
	chip := platform.MultiSocket(platform.Skylake(), 2)
	// Socket 0's energy counter is read on cpu 0; socket 1's on cpu 10.
	_, _, step := resilientSampler(t, chip,
		map[int]string{0: "gcc", 10: "cam4"},
		"at 30ms for 40ms stuck cpu=0 regs=PKG_ENERGY_STATUS", 1)

	want := []CoreStatus{
		1: StatusOK, 2: StatusOK, 3: StatusOK,
		4: StatusStale, 5: StatusRecovering, 6: StatusStale, 7: StatusRecovering,
		8: StatusOK, 9: StatusOK, 10: StatusOK,
	}
	for i := 1; i <= 10; i++ {
		samp, err := step(10 * time.Millisecond)
		if err != nil {
			t.Fatalf("interval %d: %v", i, err)
		}
		if st := samp.SocketStatus[0]; st != want[i] {
			t.Errorf("interval %d: socket 0 = %v, want %v", i, st, want[i])
		}
		if st := samp.SocketStatus[1]; st != StatusOK {
			t.Errorf("interval %d: healthy socket 1 = %v, want ok", i, st)
		}
		if samp.PkgStatus != want[i] {
			t.Errorf("interval %d: package status = %v, want worst-of %v", i, samp.PkgStatus, want[i])
		}
		if samp.SocketPower[0] <= 0 || samp.SocketPower[1] <= 0 {
			// Stale and Recovering intervals carry the last trustworthy
			// reading forward; zero watts would mean the carried value was
			// lost when the socket slices were recycled.
			t.Errorf("interval %d: socket power = %v", i, samp.SocketPower)
		}
	}
}

// TestSampleDoubleBufferContract pins down the documented ownership rule
// for Sample's slices: a returned Sample stays intact through the next
// Sample call (the two calls fill alternating buffers) and is only
// overwritten by the one after that.
func TestSampleDoubleBufferContract(t *testing.T) {
	_, _, step := resilientSampler(t, platform.Skylake(),
		map[int]string{0: "gcc", 1: "cam4"},
		// A mid-run fault makes consecutive samples differ, so reuse of
		// the wrong buffer cannot hide behind identical contents.
		"at 20ms for 20ms stuck cpu=1 regs=MPERF", 1)

	s1, err := step(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	keep := append([]CoreSample(nil), s1.Cores...)

	s2, err := step(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if &s1.Cores[0] == &s2.Cores[0] {
		t.Fatal("consecutive samples share a backing array")
	}
	for i := range keep {
		if s1.Cores[i] != keep[i] {
			t.Fatalf("core %d mutated by the following Sample: %+v -> %+v", i, keep[i], s1.Cores[i])
		}
	}

	// The second following call reclaims s1's buffer: the contract ends.
	s3, err := step(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if &s1.Cores[0] != &s3.Cores[0] {
		t.Fatal("sampler is not double-buffered: expected s3 to reuse s1's buffer")
	}
}
