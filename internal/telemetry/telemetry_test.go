package telemetry

import (
	"math"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func machineWith(t *testing.T, chip platform.Chip, apps map[int]string) *sim.Machine {
	t.Helper()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	for core, name := range apps {
		if err := m.Pin(workload.NewInstance(workload.MustByName(name)), core); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestNewSamplerValidation(t *testing.T) {
	m := machineWith(t, platform.Skylake(), nil)
	if _, err := NewSampler(m.Device(), 0, 2*units.GHz, false); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewSampler(m.Device(), 10, 0, false); err == nil {
		t.Error("zero nominal accepted")
	}
}

func TestSampleBeforePrimeFails(t *testing.T) {
	m := machineWith(t, platform.Skylake(), nil)
	s, err := NewSampler(m.Device(), 10, m.Chip().Freq.Nom, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(time.Second); err == nil {
		t.Error("unprimed sample accepted")
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestSamplerDerivesMachineState(t *testing.T) {
	m := machineWith(t, platform.Skylake(), map[int]string{0: "gcc", 1: "leela"})
	if err := m.SetRequest(0, 1800*units.MHz); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRequest(1, 1200*units.MHz); err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(m.Device(), m.Chip().NumCores, m.Chip().Freq.Nom, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	sample, err := s.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(sample.Cores[0].ActiveFreq-1800*units.MHz)) > 1e6 {
		t.Errorf("core0 freq = %v, want 1.8 GHz", sample.Cores[0].ActiveFreq)
	}
	if math.Abs(float64(sample.Cores[1].ActiveFreq-1200*units.MHz)) > 1e6 {
		t.Errorf("core1 freq = %v, want 1.2 GHz", sample.Cores[1].ActiveFreq)
	}
	// Idle core: no C0 residency, zero frequency and IPS.
	if sample.Cores[5].ActiveFreq != 0 || sample.Cores[5].IPS != 0 {
		t.Errorf("idle core sample = %+v", sample.Cores[5])
	}
	// IPS should match the workload model within counter truncation error.
	wantIPS := workload.MustByName("gcc").IPS(1800 * units.MHz)
	if math.Abs(sample.Cores[0].IPS-wantIPS)/wantIPS > 0.01 {
		t.Errorf("core0 IPS = %g, want %g", sample.Cores[0].IPS, wantIPS)
	}
	// Package power should match the machine's instantaneous power.
	if math.Abs(float64(sample.PackagePower-m.PackagePower())) > 0.5 {
		t.Errorf("package power = %v, machine = %v", sample.PackagePower, m.PackagePower())
	}
	if sample.At != time.Second || sample.Interval != time.Second {
		t.Errorf("timestamps: %+v", sample)
	}
	if sample.TotalIPS() < wantIPS {
		t.Errorf("TotalIPS = %g", sample.TotalIPS())
	}
}

func TestPerCorePowerOnRyzen(t *testing.T) {
	m := machineWith(t, platform.Ryzen(), map[int]string{0: "cactusBSSN"})
	s, err := NewSampler(m.Device(), m.Chip().NumCores, m.Chip().Freq.Nom, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	sample, err := s.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Cores[0].Power <= 1 {
		t.Errorf("busy core power = %v, want watts", sample.Cores[0].Power)
	}
	if sample.Cores[3].Power >= sample.Cores[0].Power {
		t.Errorf("idle core power %v >= busy %v", sample.Cores[3].Power, sample.Cores[0].Power)
	}
}

func TestSkylakeReportsNoPerCorePower(t *testing.T) {
	m := machineWith(t, platform.Skylake(), map[int]string{0: "gcc"})
	s, err := NewSampler(m.Device(), m.Chip().NumCores, m.Chip().Freq.Nom, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	sample, err := s.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sample.Cores {
		if c.Power != 0 {
			t.Fatalf("Skylake per-core power should be zero, got %v on cpu%d", c.Power, c.CPU)
		}
	}
}

func TestSuccessiveSamplesAreIndependent(t *testing.T) {
	m := machineWith(t, platform.Skylake(), map[int]string{0: "gcc"})
	if err := m.SetRequest(0, 2000*units.MHz); err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(m.Device(), m.Chip().NumCores, m.Chip().Freq.Nom, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	s1, err := s.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Change frequency; the next interval must reflect only the new rate.
	if err := m.SetRequest(0, 1000*units.MHz); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	s2, err := s.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(s2.Cores[0].ActiveFreq-1000*units.MHz)) > 1e6 {
		t.Errorf("second interval freq = %v, want 1 GHz", s2.Cores[0].ActiveFreq)
	}
	if s2.Cores[0].IPS >= s1.Cores[0].IPS {
		t.Errorf("IPS should drop with frequency: %g -> %g", s1.Cores[0].IPS, s2.Cores[0].IPS)
	}
	if s2.At != 2*time.Second {
		t.Errorf("At = %v", s2.At)
	}
}
