package telemetry

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/msr"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func machineWith(t *testing.T, chip platform.Chip, apps map[int]string) *sim.Machine {
	t.Helper()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	for core, name := range apps {
		if err := m.Pin(workload.NewInstance(workload.MustByName(name)), core); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestNewSamplerValidation(t *testing.T) {
	m := machineWith(t, platform.Skylake(), nil)
	if _, err := NewSampler(m.Device(), 0, 2*units.GHz, false); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewSampler(m.Device(), 10, 0, false); err == nil {
		t.Error("zero nominal accepted")
	}
}

func TestSampleBeforePrimeFails(t *testing.T) {
	m := machineWith(t, platform.Skylake(), nil)
	s, err := NewSampler(m.Device(), 10, m.Chip().Freq.Nom, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(time.Second); err == nil {
		t.Error("unprimed sample accepted")
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestSamplerDerivesMachineState(t *testing.T) {
	m := machineWith(t, platform.Skylake(), map[int]string{0: "gcc", 1: "leela"})
	if err := m.SetRequest(0, 1800*units.MHz); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRequest(1, 1200*units.MHz); err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(m.Device(), m.Chip().NumCores, m.Chip().Freq.Nom, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	sample, err := s.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(sample.Cores[0].ActiveFreq-1800*units.MHz)) > 1e6 {
		t.Errorf("core0 freq = %v, want 1.8 GHz", sample.Cores[0].ActiveFreq)
	}
	if math.Abs(float64(sample.Cores[1].ActiveFreq-1200*units.MHz)) > 1e6 {
		t.Errorf("core1 freq = %v, want 1.2 GHz", sample.Cores[1].ActiveFreq)
	}
	// Idle core: no C0 residency, zero frequency and IPS.
	if sample.Cores[5].ActiveFreq != 0 || sample.Cores[5].IPS != 0 {
		t.Errorf("idle core sample = %+v", sample.Cores[5])
	}
	// IPS should match the workload model within counter truncation error.
	wantIPS := workload.MustByName("gcc").IPS(1800 * units.MHz)
	if math.Abs(sample.Cores[0].IPS-wantIPS)/wantIPS > 0.01 {
		t.Errorf("core0 IPS = %g, want %g", sample.Cores[0].IPS, wantIPS)
	}
	// Package power should match the machine's instantaneous power.
	if math.Abs(float64(sample.PackagePower-m.PackagePower())) > 0.5 {
		t.Errorf("package power = %v, machine = %v", sample.PackagePower, m.PackagePower())
	}
	if sample.At != time.Second || sample.Interval != time.Second {
		t.Errorf("timestamps: %+v", sample)
	}
	if sample.TotalIPS() < wantIPS {
		t.Errorf("TotalIPS = %g", sample.TotalIPS())
	}
}

func TestPerCorePowerOnRyzen(t *testing.T) {
	m := machineWith(t, platform.Ryzen(), map[int]string{0: "cactusBSSN"})
	s, err := NewSampler(m.Device(), m.Chip().NumCores, m.Chip().Freq.Nom, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	sample, err := s.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Cores[0].Power <= 1 {
		t.Errorf("busy core power = %v, want watts", sample.Cores[0].Power)
	}
	if sample.Cores[3].Power >= sample.Cores[0].Power {
		t.Errorf("idle core power %v >= busy %v", sample.Cores[3].Power, sample.Cores[0].Power)
	}
}

func TestSkylakeReportsNoPerCorePower(t *testing.T) {
	m := machineWith(t, platform.Skylake(), map[int]string{0: "gcc"})
	s, err := NewSampler(m.Device(), m.Chip().NumCores, m.Chip().Freq.Nom, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	sample, err := s.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sample.Cores {
		if c.Power != 0 {
			t.Fatalf("Skylake per-core power should be zero, got %v on cpu%d", c.Power, c.CPU)
		}
	}
}

func TestSuccessiveSamplesAreIndependent(t *testing.T) {
	m := machineWith(t, platform.Skylake(), map[int]string{0: "gcc"})
	if err := m.SetRequest(0, 2000*units.MHz); err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(m.Device(), m.Chip().NumCores, m.Chip().Freq.Nom, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	s1, err := s.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Change frequency; the next interval must reflect only the new rate.
	if err := m.SetRequest(0, 1000*units.MHz); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	s2, err := s.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(s2.Cores[0].ActiveFreq-1000*units.MHz)) > 1e6 {
		t.Errorf("second interval freq = %v, want 1 GHz", s2.Cores[0].ActiveFreq)
	}
	if s2.Cores[0].IPS >= s1.Cores[0].IPS {
		t.Errorf("IPS should drop with frequency: %g -> %g", s1.Cores[0].IPS, s2.Cores[0].IPS)
	}
	if s2.At != 2*time.Second {
		t.Errorf("At = %v", s2.At)
	}
}

// failAfterDevice passes through to the machine's device until n reads have
// happened, then fails every read.
type failAfterDevice struct {
	dev   msr.Device
	n     int
	reads int
}

func (f *failAfterDevice) Read(cpu int, reg uint32) (uint64, error) {
	f.reads++
	if f.reads > f.n {
		return 0, fmt.Errorf("injected read failure")
	}
	return f.dev.Read(cpu, reg)
}

func (f *failAfterDevice) Write(cpu int, reg uint32, v uint64) error {
	return f.dev.Write(cpu, reg, v)
}

func TestInstrumentCountsReadsAndErrors(t *testing.T) {
	chip := platform.Skylake()
	m := machineWith(t, chip, map[int]string{0: "gcc"})
	reg := metrics.NewRegistry()
	s, err := NewSampler(m.Device(), chip.NumCores, chip.Freq.Nom, chip.PerCorePower)
	if err != nil {
		t.Fatal(err)
	}
	s.Instrument(reg)
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	if _, err := s.Sample(time.Second); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("telemetry_samples_total", "").Value(); v != 1 {
		t.Errorf("samples = %v, want 1", v)
	}
	// One read per core for APERF/MPERF/FIXED_CTR0 plus the package energy
	// counter, per read() pass (prime + sample).
	wantReads := float64(2 * (3*chip.NumCores + 1))
	if v := reg.Counter("telemetry_msr_reads_total", "").Value(); v != wantReads {
		t.Errorf("msr reads = %v, want %v", v, wantReads)
	}
	if v := reg.Counter("telemetry_read_errors_total", "").Value(); v != 0 {
		t.Errorf("read errors = %v, want 0", v)
	}
}

func TestInstrumentCountsFailedReads(t *testing.T) {
	chip := platform.Skylake()
	m := machineWith(t, chip, nil)
	fd := &failAfterDevice{dev: m.Device(), n: 1 << 30}
	reg := metrics.NewRegistry()
	s, err := NewSampler(fd, chip.NumCores, chip.Freq.Nom, false)
	if err != nil {
		t.Fatal(err)
	}
	s.Instrument(reg)
	fd.n = fd.reads // every further read fails
	if err := s.Prime(); err == nil {
		t.Fatal("failing device primed successfully")
	}
	if v := reg.Counter("telemetry_read_errors_total", "").Value(); v != 1 {
		t.Errorf("read errors = %v, want 1", v)
	}
}
