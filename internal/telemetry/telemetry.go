// Package telemetry is the simulator's turbostat: it samples the MSR device
// at an interval and derives, per core, the active frequency
// (nominal * ΔAPERF/ΔMPERF), instructions per second (ΔFIXED_CTR0), and
// power (Δenergy-status), plus package power — the exact variables the
// paper records once per second to drive its policies (Section 3.1).
//
// Real MSR access fails in ways a control loop must survive: transient EIO
// from the msr driver, counters that stop advancing (a stuck register file
// looks exactly like an idle core), torn multi-register samples where APERF
// advances while MPERF is frozen. The sampler therefore classifies every
// core sample with a typed Status instead of conflating "zero delta" with
// "garbage": an idle core legitimately reports 0 IPS with StatusIdle, while
// internally inconsistent counters report StatusStale and a core whose
// reads keep failing reports StatusDark. In resilient mode (SetResilient)
// reads are retried with bounded backoff and a failing core is isolated
// rather than aborting the whole sample.
//
// The sampler is built for the steady-state control loop of large
// machines: counters are read with one batched sweep per register
// (msr.BatchReader) instead of one interface call per core, baselines
// advance by swapping the previous and current counter slices, and the
// returned Sample is written into one of two sampler-owned buffers. A
// steady-state Sample call performs no heap allocation. The buffer
// contract: the slices inside a returned Sample (Cores, SocketPower,
// SocketStatus) remain valid until the *second* following Sample call —
// the double buffer gives the previous interval's reading a full interval
// of grace — after which they are overwritten in place. Callers that
// retain telemetry longer must copy.
package telemetry

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/msr"
	"repro/internal/units"
)

// CoreStatus classifies the trustworthiness of one core's sample.
type CoreStatus uint8

const (
	// StatusOK: counters advanced consistently; derived values are good.
	StatusOK CoreStatus = iota
	// StatusIdle: APERF, MPERF, and the instruction counter all held still
	// — the core spent the interval parked or in a C-state. 0 IPS is the
	// truth, not garbage.
	StatusIdle
	// StatusStale: counters are internally inconsistent (some advanced
	// while others froze, or a monotonic counter went backwards). Derived
	// values are zeroed; do not trust this core's telemetry.
	StatusStale
	// StatusDark: the core's MSRs could not be read at all this interval,
	// even after retries. Only reported in resilient mode.
	StatusDark
	// StatusRecovering: first successful read after a non-OK interval. The
	// baseline was re-established; derived values are zeroed because the
	// deltas would span the outage.
	StatusRecovering
)

var statusNames = [...]string{"ok", "idle", "stale", "dark", "recovering"}

// statusSeverity orders statuses for worst-of aggregation across sockets:
// a package reading is only as trustworthy as its least trustworthy domain.
var statusSeverity = [...]uint8{
	StatusOK:         0,
	StatusIdle:       1,
	StatusRecovering: 2,
	StatusStale:      3,
	StatusDark:       4,
}

// String names the status.
func (st CoreStatus) String() string {
	if int(st) < len(statusNames) {
		return statusNames[st]
	}
	return "unknown"
}

// Trustworthy reports whether derived values from a sample with this
// status should feed control decisions.
func (st CoreStatus) Trustworthy() bool { return st == StatusOK || st == StatusIdle }

// CoreSample is one core's derived telemetry over an interval.
type CoreSample struct {
	CPU        int
	ActiveFreq units.Hertz // 0 if the core never entered C0
	IPS        float64
	Power      units.Watts // per-core power; zero on platforms without it
	Status     CoreStatus  // why the values are (or are not) trustworthy
}

// Sample is one sampling interval's telemetry.
//
// The Cores, SocketPower, and SocketStatus slices are owned by the
// Sampler's double buffer: they stay valid until the second following
// Sample call, then are overwritten in place. Copy to retain longer.
type Sample struct {
	At           time.Duration // virtual or wall time of the sample
	Interval     time.Duration
	PackagePower units.Watts
	// PkgStatus qualifies PackagePower: StatusStale means an energy
	// counter froze while cores were demonstrably executing (the value is
	// the last trustworthy reading, carried forward), StatusDark means a
	// register was unreadable this interval. On multi-socket packages it
	// is the worst status across sockets.
	PkgStatus CoreStatus
	Cores     []CoreSample
	// SocketPower breaks PackagePower down per RAPL domain (one entry per
	// socket; a single entry on single-socket chips), with SocketStatus
	// qualifying each entry the way PkgStatus qualifies the total.
	SocketPower  []units.Watts
	SocketStatus []CoreStatus
}

// TotalIPS sums instruction throughput across cores.
func (s Sample) TotalIPS() float64 {
	var t float64
	for _, c := range s.Cores {
		t += c.IPS
	}
	return t
}

// Healthy reports whether every core sample and the package reading are
// trustworthy.
func (s Sample) Healthy() bool {
	if !s.PkgStatus.Trustworthy() {
		return false
	}
	for _, c := range s.Cores {
		if !c.Status.Trustworthy() {
			return false
		}
	}
	return true
}

// RetryPolicy bounds how hard a resilient sampler tries to read one MSR.
type RetryPolicy struct {
	// Attempts is the total number of tries per read; values below 1 are
	// treated as 1 (no retry).
	Attempts int
	// Backoff is the wait before the second attempt; it doubles per
	// further attempt. Zero means retry immediately.
	Backoff time.Duration
	// Sleep realises the backoff. Nil means no actual waiting, which is
	// what virtual-time runs want: the retries still happen, the wall
	// clock does not move.
	Sleep func(time.Duration)
}

// DefaultRetry is the retry policy resilient samplers get when the caller
// does not specify one: three attempts, 50µs then 100µs apart.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 50 * time.Microsecond}

// Sampler derives telemetry from successive MSR reads.
type Sampler struct {
	dev     msr.Device
	nCores  int
	sockets int
	cps     int // cores per socket
	nom     units.Hertz
	perCore bool
	unit    msr.EnergyUnit

	resilient bool
	retry     RetryPolicy

	primed bool
	at     time.Duration

	// Counter baselines and the current sweep's scratch. A sample reads
	// into cur*, classifies cur against prev, then swaps the slice
	// headers — no copying, no allocation. Cores whose reads failed get
	// prev copied into cur before the swap so their baseline holds.
	prevAperf, curAperf []uint64
	prevMperf, curMperf []uint64
	prevInstr, curInstr []uint64
	prevCore, curCore   []uint64
	okScratch           []bool // per-register read success, resilient mode
	curOK               []bool // all of a core's registers read this sweep

	prevPkg []uint64 // per-socket package energy baseline

	baseOK     []bool       // per-core baseline is valid
	lastStatus []CoreStatus // previous interval's classification
	pkgBaseOK  []bool       // per socket
	pkgLast    []CoreStatus // per socket
	lastGoodW  []units.Watts

	anyExecSock []bool // per-Sample scratch: socket saw MPERF advance

	// out is the double buffer the returned Samples point into: flip
	// selects the buffer being written, leaving the previous Sample's
	// slices intact for one more interval (so a reader holding last
	// interval's telemetry never races the loop).
	out  [2]Sample
	flip int

	// Optional instrumentation; nil handles no-op.
	mSamples    *metrics.Counter
	mMSRReads   *metrics.Counter
	mReadErrors *metrics.Counter
	mRetries    *metrics.Counter
	mStatusBy   [len(statusNames)]*metrics.Counter
}

// Instrument registers the sampler's metrics on reg: samples taken, raw
// MSR reads issued, read errors, retries, and per-status core sample
// counts. Safe to call with a nil registry.
func (s *Sampler) Instrument(reg *metrics.Registry) {
	s.mSamples = reg.Counter("telemetry_samples_total", "Telemetry samples derived from MSR reads.")
	s.mMSRReads = reg.Counter("telemetry_msr_reads_total", "Raw MSR read operations issued by the sampler.")
	s.mReadErrors = reg.Counter("telemetry_read_errors_total", "MSR read operations that returned an error.")
	s.mRetries = reg.Counter("telemetry_read_retries_total", "MSR reads retried after a transient failure.")
	if reg != nil {
		// The status label set is closed, so the per-status counters are
		// resolved once here instead of a map lookup per core per interval.
		vec := reg.CounterVec("telemetry_core_status_total", "Core samples by trustworthiness classification.", "status")
		for i, name := range statusNames {
			s.mStatusBy[i] = vec.With(name)
		}
	}
}

// NewSampler builds a sampler over dev for nCores cores with nominal
// frequency nom. perCorePower selects whether per-core energy counters are
// meaningful (Ryzen) or only the package domain is (Skylake). The RAPL
// energy unit is read from the device.
func NewSampler(dev msr.Device, nCores int, nom units.Hertz, perCorePower bool) (*Sampler, error) {
	if nCores <= 0 {
		return nil, fmt.Errorf("telemetry: nCores must be positive")
	}
	if nom <= 0 {
		return nil, fmt.Errorf("telemetry: nominal frequency must be positive")
	}
	uv, err := dev.Read(0, msr.RAPLPowerUnit)
	if err != nil {
		return nil, fmt.Errorf("telemetry: reading power unit: %w", err)
	}
	s := &Sampler{
		dev:        dev,
		nCores:     nCores,
		nom:        nom,
		perCore:    perCorePower,
		unit:       msr.DecodePowerUnit(uv),
		prevAperf:  make([]uint64, nCores),
		curAperf:   make([]uint64, nCores),
		prevMperf:  make([]uint64, nCores),
		curMperf:   make([]uint64, nCores),
		prevInstr:  make([]uint64, nCores),
		curInstr:   make([]uint64, nCores),
		prevCore:   make([]uint64, nCores),
		curCore:    make([]uint64, nCores),
		okScratch:  make([]bool, nCores),
		curOK:      make([]bool, nCores),
		baseOK:     make([]bool, nCores),
		lastStatus: make([]CoreStatus, nCores),
	}
	for b := range s.out {
		s.out[b].Cores = make([]CoreSample, nCores)
	}
	s.sizeSockets(1)
	return s, nil
}

// SetSockets splits the package into n RAPL domains: the package energy
// MSR is read once per socket (through the socket's first CPU) and the
// Sample carries a per-socket power breakdown. Must be called before
// Prime; n must divide the core count. Single-socket is the default.
func (s *Sampler) SetSockets(n int) error {
	if n < 1 {
		return fmt.Errorf("telemetry: socket count %d must be positive", n)
	}
	if s.nCores%n != 0 {
		return fmt.Errorf("telemetry: %d cores do not divide into %d sockets", s.nCores, n)
	}
	if s.primed {
		return fmt.Errorf("telemetry: SetSockets after Prime")
	}
	s.sizeSockets(n)
	return nil
}

func (s *Sampler) sizeSockets(n int) {
	s.sockets = n
	s.cps = s.nCores / n
	s.prevPkg = make([]uint64, n)
	s.pkgBaseOK = make([]bool, n)
	s.pkgLast = make([]CoreStatus, n)
	s.lastGoodW = make([]units.Watts, n)
	s.anyExecSock = make([]bool, n)
	for b := range s.out {
		s.out[b].SocketPower = make([]units.Watts, n)
		s.out[b].SocketStatus = make([]CoreStatus, n)
	}
}

// Sockets reports how many RAPL domains the sampler reads.
func (s *Sampler) Sockets() int { return s.sockets }

// SetResilient switches the sampler into resilient mode: reads are retried
// per rp, and a core whose reads still fail is reported StatusDark (its
// baseline held for re-admission) instead of failing the whole Sample. A
// zero rp takes DefaultRetry.
func (s *Sampler) SetResilient(rp RetryPolicy) {
	if rp.Attempts < 1 {
		rp = DefaultRetry
	}
	s.resilient = true
	s.retry = rp
}

// Prime records a baseline without producing a sample. It must be called
// once before the first Sample. In resilient mode unreadable cores are
// tolerated: they start dark and baseline on their first good read.
func (s *Sampler) Prime() error {
	if s.resilient {
		s.readResilient()
		for i, ok := range s.curOK {
			if !ok {
				continue
			}
			s.prevAperf[i], s.prevMperf[i], s.prevInstr[i] = s.curAperf[i], s.curMperf[i], s.curInstr[i]
			s.prevCore[i] = s.curCore[i]
			s.baseOK[i] = true
		}
		for sck := 0; sck < s.sockets; sck++ {
			if pkg, err := s.readMSR(sck*s.cps, msr.PkgEnergyStatus); err == nil {
				s.prevPkg[sck] = pkg
				s.pkgBaseOK[sck] = true
			}
		}
		s.primed = true
		return nil
	}
	if err := s.readStrict(); err != nil {
		return err
	}
	for sck := 0; sck < s.sockets; sck++ {
		pkg, err := s.readMSR(sck*s.cps, msr.PkgEnergyStatus)
		if err != nil {
			return fmt.Errorf("telemetry: package energy socket %d: %w", sck, err)
		}
		s.prevPkg[sck] = pkg
		s.pkgBaseOK[sck] = true
	}
	s.swapBaselines()
	for i := range s.baseOK {
		s.baseOK[i] = true
	}
	s.primed = true
	return nil
}

// swapBaselines commits the current sweep as the new baseline by swapping
// the slice headers — the old baseline becomes next sweep's scratch.
func (s *Sampler) swapBaselines() {
	s.prevAperf, s.curAperf = s.curAperf, s.prevAperf
	s.prevMperf, s.curMperf = s.curMperf, s.prevMperf
	s.prevInstr, s.curInstr = s.curInstr, s.prevInstr
	s.prevCore, s.curCore = s.curCore, s.prevCore
}

// readMSR wraps a single device read with instrumentation and, in
// resilient mode, bounded retry with backoff. Used for the per-socket
// package counter and as the retry path behind failed batch entries.
func (s *Sampler) readMSR(cpu int, reg uint32) (uint64, error) {
	attempts := 1
	if s.resilient {
		attempts = s.retry.Attempts
	}
	backoff := s.retry.Backoff
	var v uint64
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			s.mRetries.Inc()
			if s.retry.Sleep != nil && backoff > 0 {
				s.retry.Sleep(backoff)
			}
			backoff *= 2
		}
		s.mMSRReads.Inc()
		v, err = s.dev.Read(cpu, reg)
		if err == nil {
			return v, nil
		}
		s.mReadErrors.Inc()
	}
	return v, err
}

// retryRead runs the retry tail (attempts after the first) for one cpu
// whose batch read failed. Reports success and the value.
func (s *Sampler) retryRead(cpu int, reg uint32) (uint64, bool) {
	backoff := s.retry.Backoff
	for try := 1; try < s.retry.Attempts; try++ {
		s.mRetries.Inc()
		if s.retry.Sleep != nil && backoff > 0 {
			s.retry.Sleep(backoff)
		}
		backoff *= 2
		s.mMSRReads.Inc()
		if v, err := s.dev.Read(cpu, reg); err == nil {
			return v, true
		}
		s.mReadErrors.Inc()
	}
	return 0, false
}

// readStrict is the fail-fast read path: one batched sweep per register;
// the first error aborts with the baseline untouched (the whole sample is
// lost, nothing partial is committed).
func (s *Sampler) readStrict() error {
	regs := [3]struct {
		reg  uint32
		dst  []uint64
		name string
	}{
		{msr.IA32Aperf, s.curAperf, "aperf"},
		{msr.IA32Mperf, s.curMperf, "mperf"},
		{msr.IA32FixedCtr0, s.curInstr, "instr"},
	}
	for _, r := range regs {
		s.mMSRReads.Add(float64(len(r.dst)))
		if err := msr.ReadBatch(s.dev, r.reg, r.dst, nil); err != nil {
			s.mReadErrors.Inc()
			return fmt.Errorf("telemetry: %s: %w", r.name, err)
		}
	}
	if s.perCore {
		s.mMSRReads.Add(float64(s.nCores))
		if err := msr.ReadBatch(s.dev, msr.PP0EnergyStatus, s.curCore, nil); err != nil {
			s.mReadErrors.Inc()
			return fmt.Errorf("telemetry: core energy: %w", err)
		}
	}
	for i := range s.curOK {
		s.curOK[i] = true
	}
	return nil
}

// readResilient reads every core with one batched sweep per register,
// retrying individual failures with backoff; a core whose reads still
// fail comes back curOK=false with prev copied into cur so the swap holds
// its baseline.
func (s *Sampler) readResilient() {
	for i := range s.curOK {
		s.curOK[i] = true
	}
	s.batchResilient(msr.IA32Aperf, s.curAperf)
	s.batchResilient(msr.IA32Mperf, s.curMperf)
	s.batchResilient(msr.IA32FixedCtr0, s.curInstr)
	if s.perCore {
		s.batchResilient(msr.PP0EnergyStatus, s.curCore)
	}
	for i, ok := range s.curOK {
		if ok {
			continue
		}
		// Hold the failed core's baseline across the swap.
		s.curAperf[i] = s.prevAperf[i]
		s.curMperf[i] = s.prevMperf[i]
		s.curInstr[i] = s.prevInstr[i]
		s.curCore[i] = s.prevCore[i]
	}
}

// batchResilient sweeps one register across all cores, then walks the
// retry tail for cores whose batch entry failed, folding the outcome into
// curOK.
func (s *Sampler) batchResilient(reg uint32, dst []uint64) {
	s.mMSRReads.Add(float64(len(dst)))
	_ = msr.ReadBatch(s.dev, reg, dst, s.okScratch)
	for i, ok := range s.okScratch {
		if ok {
			continue
		}
		s.mReadErrors.Inc()
		if v, recovered := s.retryRead(i, reg); recovered {
			dst[i] = v
			continue
		}
		s.curOK[i] = false
	}
}

// noteStatus counts a classification.
func (s *Sampler) noteStatus(st CoreStatus) {
	if int(st) < len(s.mStatusBy) {
		s.mStatusBy[st].Inc()
	}
}

// Sample reads the device, derives telemetry relative to the previous read
// over the elapsed interval dt, and advances the baseline. The returned
// Sample's slices point into the sampler's double buffer — see the Sample
// type for the ownership rule. Steady state performs no heap allocation.
//
// In the default (fail-fast) mode any read error aborts the sample, exactly
// as before resilient mode existed. In resilient mode the error return is
// reserved for misuse (Sample before Prime, bad dt): read failures degrade
// the affected core to StatusDark instead.
func (s *Sampler) Sample(dt time.Duration) (Sample, error) {
	if !s.primed {
		return Sample{}, fmt.Errorf("telemetry: Sample before Prime")
	}
	if dt <= 0 {
		return Sample{}, fmt.Errorf("telemetry: non-positive interval %v", dt)
	}
	if s.resilient {
		s.readResilient()
	} else if err := s.readStrict(); err != nil {
		return Sample{}, err
	}

	s.at += dt
	s.flip ^= 1
	out := &s.out[s.flip]
	out.At = s.at
	out.Interval = dt

	for sck := range s.anyExecSock {
		s.anyExecSock[sck] = false
	}
	for i := 0; i < s.nCores; i++ {
		if s.curOK[i] && s.baseOK[i] && s.curMperf[i] != s.prevMperf[i] {
			s.anyExecSock[i/s.cps] = true
		}
		out.Cores[i] = s.classify(i, dt)
	}
	s.swapBaselines()

	out.PackagePower = 0
	worst := StatusOK
	for sck := 0; sck < s.sockets; sck++ {
		pkg, err := s.readMSR(sck*s.cps, msr.PkgEnergyStatus)
		pkgOK := err == nil
		if err != nil && !s.resilient {
			return Sample{}, fmt.Errorf("telemetry: package energy socket %d: %w", sck, err)
		}
		w, st := s.pkgPower(sck, pkg, pkgOK, s.anyExecSock[sck], dt)
		out.SocketPower[sck] = w
		out.SocketStatus[sck] = st
		out.PackagePower += w
		if statusSeverity[st] > statusSeverity[worst] {
			worst = st
		}
	}
	out.PkgStatus = worst
	s.mSamples.Inc()
	return *out, nil
}

// classify derives core i's sample and its status from the current sweep
// against the baseline. The baseline slices are committed by the caller's
// swap; classify only maintains the per-core status state machine.
func (s *Sampler) classify(i int, dt time.Duration) CoreSample {
	cs := CoreSample{CPU: i}
	defer func() {
		s.lastStatus[i] = cs.Status
		s.noteStatus(cs.Status)
	}()

	if !s.curOK[i] {
		// Reads failed after retries: the core is dark. The baseline is
		// held (prev copied into cur before the swap) so a later recovery
		// can re-baseline cleanly.
		cs.Status = StatusDark
		return cs
	}
	hadBase := s.baseOK[i]
	s.baseOK[i] = true

	if !hadBase || s.lastStatus[i] == StatusDark || s.lastStatus[i] == StatusStale {
		// First good read after an outage (or ever): the old baseline is
		// missing or spans the outage, so deltas are meaningless. Zero the
		// derived values for one interval and resume from here — the
		// baseline committed by this sweep makes the next interval clean.
		cs.Status = StatusRecovering
		return cs
	}
	curA, curM, curI := s.curAperf[i], s.curMperf[i], s.curInstr[i]
	prevA, prevM, prevI := s.prevAperf[i], s.prevMperf[i], s.prevInstr[i]
	if curA < prevA || curM < prevM || curI < prevI {
		// A monotonic 64-bit counter went backwards: the register file is
		// lying (or the device was swapped underneath us).
		cs.Status = StatusStale
		return cs
	}
	da, dm, di := curA-prevA, curM-prevM, curI-prevI
	if da == 0 && dm == 0 && di == 0 {
		// Nothing advanced: the core spent the whole interval out of C0.
		// That is an idle core, not garbage — 0 IPS with a reason.
		cs.Status = StatusIdle
		return cs
	}
	if dm == 0 || da == 0 {
		// Torn sample: C0 residency and work done must advance together.
		// APERF moving while MPERF is frozen (or either frozen while
		// instructions retire) is internally inconsistent.
		cs.Status = StatusStale
		return cs
	}
	cs.Status = StatusOK
	cs.ActiveFreq = s.nom * units.Hertz(float64(da)/float64(dm))
	cs.IPS = float64(di) / dt.Seconds()
	if s.perCore {
		cs.Power = s.unit.FromCounts(msr.DeltaCounts(s.prevCore[i], s.curCore[i])).Power(dt)
	}
	return cs
}

// pkgPower derives one socket's power and status. anyExec reports whether
// any of the socket's cores demonstrably executed this interval (MPERF
// advanced), which makes a frozen energy counter implausible rather than
// idle.
func (s *Sampler) pkgPower(sck int, cur uint64, ok, anyExec bool, dt time.Duration) (units.Watts, CoreStatus) {
	defer func() { s.noteStatus(s.pkgLast[sck]) }()
	if !ok {
		// Unreadable: carry the last trustworthy power forward so the
		// control plane keeps a conservative estimate instead of seeing
		// zero draw.
		s.pkgLast[sck] = StatusDark
		return s.lastGoodW[sck], StatusDark
	}
	prev := s.prevPkg[sck]
	hadBase := s.pkgBaseOK[sck]
	s.prevPkg[sck], s.pkgBaseOK[sck] = cur, true
	if !hadBase || s.pkgLast[sck] == StatusDark || s.pkgLast[sck] == StatusStale {
		s.pkgLast[sck] = StatusRecovering
		return s.lastGoodW[sck], StatusRecovering
	}
	if cur == prev && anyExec {
		// Cores executed but the socket's energy counter did not move: the
		// counter is stuck. Zero watts while work is being done would let
		// every policy raise frequencies without bound, so report the last
		// good reading instead.
		s.pkgLast[sck] = StatusStale
		return s.lastGoodW[sck], StatusStale
	}
	w := s.unit.FromCounts(msr.DeltaCounts(prev, cur)).Power(dt)
	st := StatusOK
	if cur == prev {
		st = StatusIdle
	}
	s.pkgLast[sck] = st
	s.lastGoodW[sck] = w
	return w, st
}
