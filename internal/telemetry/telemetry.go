// Package telemetry is the simulator's turbostat: it samples the MSR device
// at an interval and derives, per core, the active frequency
// (nominal * ΔAPERF/ΔMPERF), instructions per second (ΔFIXED_CTR0), and
// power (Δenergy-status), plus package power — the exact variables the
// paper records once per second to drive its policies (Section 3.1).
//
// Real MSR access fails in ways a control loop must survive: transient EIO
// from the msr driver, counters that stop advancing (a stuck register file
// looks exactly like an idle core), torn multi-register samples where APERF
// advances while MPERF is frozen. The sampler therefore classifies every
// core sample with a typed Status instead of conflating "zero delta" with
// "garbage": an idle core legitimately reports 0 IPS with StatusIdle, while
// internally inconsistent counters report StatusStale and a core whose
// reads keep failing reports StatusDark. In resilient mode (SetResilient)
// reads are retried with bounded backoff and a failing core is isolated
// rather than aborting the whole sample.
package telemetry

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/msr"
	"repro/internal/units"
)

// CoreStatus classifies the trustworthiness of one core's sample.
type CoreStatus uint8

const (
	// StatusOK: counters advanced consistently; derived values are good.
	StatusOK CoreStatus = iota
	// StatusIdle: APERF, MPERF, and the instruction counter all held still
	// — the core spent the interval parked or in a C-state. 0 IPS is the
	// truth, not garbage.
	StatusIdle
	// StatusStale: counters are internally inconsistent (some advanced
	// while others froze, or a monotonic counter went backwards). Derived
	// values are zeroed; do not trust this core's telemetry.
	StatusStale
	// StatusDark: the core's MSRs could not be read at all this interval,
	// even after retries. Only reported in resilient mode.
	StatusDark
	// StatusRecovering: first successful read after a non-OK interval. The
	// baseline was re-established; derived values are zeroed because the
	// deltas would span the outage.
	StatusRecovering
)

var statusNames = [...]string{"ok", "idle", "stale", "dark", "recovering"}

// String names the status.
func (st CoreStatus) String() string {
	if int(st) < len(statusNames) {
		return statusNames[st]
	}
	return "unknown"
}

// Trustworthy reports whether derived values from a sample with this
// status should feed control decisions.
func (st CoreStatus) Trustworthy() bool { return st == StatusOK || st == StatusIdle }

// CoreSample is one core's derived telemetry over an interval.
type CoreSample struct {
	CPU        int
	ActiveFreq units.Hertz // 0 if the core never entered C0
	IPS        float64
	Power      units.Watts // per-core power; zero on platforms without it
	Status     CoreStatus  // why the values are (or are not) trustworthy
}

// Sample is one sampling interval's telemetry.
type Sample struct {
	At           time.Duration // virtual or wall time of the sample
	Interval     time.Duration
	PackagePower units.Watts
	// PkgStatus qualifies PackagePower: StatusStale means the energy
	// counter froze while cores were demonstrably executing (the value is
	// the last trustworthy reading, carried forward), StatusDark means the
	// register was unreadable this interval.
	PkgStatus CoreStatus
	Cores     []CoreSample
}

// TotalIPS sums instruction throughput across cores.
func (s Sample) TotalIPS() float64 {
	var t float64
	for _, c := range s.Cores {
		t += c.IPS
	}
	return t
}

// Healthy reports whether every core sample and the package reading are
// trustworthy.
func (s Sample) Healthy() bool {
	if !s.PkgStatus.Trustworthy() {
		return false
	}
	for _, c := range s.Cores {
		if !c.Status.Trustworthy() {
			return false
		}
	}
	return true
}

// RetryPolicy bounds how hard a resilient sampler tries to read one MSR.
type RetryPolicy struct {
	// Attempts is the total number of tries per read; values below 1 are
	// treated as 1 (no retry).
	Attempts int
	// Backoff is the wait before the second attempt; it doubles per
	// further attempt. Zero means retry immediately.
	Backoff time.Duration
	// Sleep realises the backoff. Nil means no actual waiting, which is
	// what virtual-time runs want: the retries still happen, the wall
	// clock does not move.
	Sleep func(time.Duration)
}

// DefaultRetry is the retry policy resilient samplers get when the caller
// does not specify one: three attempts, 50µs then 100µs apart.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 50 * time.Microsecond}

// Sampler derives telemetry from successive MSR reads.
type Sampler struct {
	dev     msr.Device
	nCores  int
	nom     units.Hertz
	perCore bool
	unit    msr.EnergyUnit

	resilient bool
	retry     RetryPolicy

	primed    bool
	at        time.Duration
	prevAperf []uint64
	prevMperf []uint64
	prevInstr []uint64
	prevCore  []uint64
	prevPkg   uint64

	baseOK     []bool       // per-core baseline is valid
	lastStatus []CoreStatus // previous interval's classification
	pkgBaseOK  bool
	pkgLast    CoreStatus
	lastGoodW  units.Watts // last trustworthy package power

	// Optional instrumentation; nil handles no-op.
	mSamples    *metrics.Counter
	mMSRReads   *metrics.Counter
	mReadErrors *metrics.Counter
	mRetries    *metrics.Counter
	mStatus     *metrics.CounterVec
}

// Instrument registers the sampler's metrics on reg: samples taken, raw
// MSR reads issued, read errors, retries, and per-status core sample
// counts. Safe to call with a nil registry.
func (s *Sampler) Instrument(reg *metrics.Registry) {
	s.mSamples = reg.Counter("telemetry_samples_total", "Telemetry samples derived from MSR reads.")
	s.mMSRReads = reg.Counter("telemetry_msr_reads_total", "Raw MSR read operations issued by the sampler.")
	s.mReadErrors = reg.Counter("telemetry_read_errors_total", "MSR read operations that returned an error.")
	s.mRetries = reg.Counter("telemetry_read_retries_total", "MSR reads retried after a transient failure.")
	s.mStatus = reg.CounterVec("telemetry_core_status_total", "Core samples by trustworthiness classification.", "status")
}

// NewSampler builds a sampler over dev for nCores cores with nominal
// frequency nom. perCorePower selects whether per-core energy counters are
// meaningful (Ryzen) or only the package domain is (Skylake). The RAPL
// energy unit is read from the device.
func NewSampler(dev msr.Device, nCores int, nom units.Hertz, perCorePower bool) (*Sampler, error) {
	if nCores <= 0 {
		return nil, fmt.Errorf("telemetry: nCores must be positive")
	}
	if nom <= 0 {
		return nil, fmt.Errorf("telemetry: nominal frequency must be positive")
	}
	uv, err := dev.Read(0, msr.RAPLPowerUnit)
	if err != nil {
		return nil, fmt.Errorf("telemetry: reading power unit: %w", err)
	}
	return &Sampler{
		dev:        dev,
		nCores:     nCores,
		nom:        nom,
		perCore:    perCorePower,
		unit:       msr.DecodePowerUnit(uv),
		prevAperf:  make([]uint64, nCores),
		prevMperf:  make([]uint64, nCores),
		prevInstr:  make([]uint64, nCores),
		prevCore:   make([]uint64, nCores),
		baseOK:     make([]bool, nCores),
		lastStatus: make([]CoreStatus, nCores),
	}, nil
}

// SetResilient switches the sampler into resilient mode: reads are retried
// per rp, and a core whose reads still fail is reported StatusDark (its
// baseline held for re-admission) instead of failing the whole Sample. A
// zero rp takes DefaultRetry.
func (s *Sampler) SetResilient(rp RetryPolicy) {
	if rp.Attempts < 1 {
		rp = DefaultRetry
	}
	s.resilient = true
	s.retry = rp
}

// Prime records a baseline without producing a sample. It must be called
// once before the first Sample. In resilient mode unreadable cores are
// tolerated: they start dark and baseline on their first good read.
func (s *Sampler) Prime() error {
	if s.resilient {
		s.readResilient()
		s.primed = true
		return nil
	}
	if err := s.readStrict(); err != nil {
		return err
	}
	for i := range s.baseOK {
		s.baseOK[i] = true
	}
	s.pkgBaseOK = true
	s.primed = true
	return nil
}

// readMSR wraps the device read with instrumentation and, in resilient
// mode, bounded retry with backoff.
func (s *Sampler) readMSR(cpu int, reg uint32) (uint64, error) {
	attempts := 1
	if s.resilient {
		attempts = s.retry.Attempts
	}
	backoff := s.retry.Backoff
	var v uint64
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			s.mRetries.Inc()
			if s.retry.Sleep != nil && backoff > 0 {
				s.retry.Sleep(backoff)
			}
			backoff *= 2
		}
		s.mMSRReads.Inc()
		v, err = s.dev.Read(cpu, reg)
		if err == nil {
			return v, nil
		}
		s.mReadErrors.Inc()
	}
	return v, err
}

// readStrict is the fail-fast read path: the first error aborts, leaving
// baselines partially advanced (callers treat the whole sample as lost).
func (s *Sampler) readStrict() error {
	for i := 0; i < s.nCores; i++ {
		a, err := s.readMSR(i, msr.IA32Aperf)
		if err != nil {
			return fmt.Errorf("telemetry: aperf cpu%d: %w", i, err)
		}
		m, err := s.readMSR(i, msr.IA32Mperf)
		if err != nil {
			return fmt.Errorf("telemetry: mperf cpu%d: %w", i, err)
		}
		ins, err := s.readMSR(i, msr.IA32FixedCtr0)
		if err != nil {
			return fmt.Errorf("telemetry: instr cpu%d: %w", i, err)
		}
		s.prevAperf[i], s.prevMperf[i], s.prevInstr[i] = a, m, ins
		if s.perCore {
			e, err := s.readMSR(i, msr.PP0EnergyStatus)
			if err != nil {
				return fmt.Errorf("telemetry: core energy cpu%d: %w", i, err)
			}
			s.prevCore[i] = e
		}
	}
	pkg, err := s.readMSR(0, msr.PkgEnergyStatus)
	if err != nil {
		return fmt.Errorf("telemetry: package energy: %w", err)
	}
	s.prevPkg = pkg
	return nil
}

// coreRead is one core's raw counters for an interval.
type coreRead struct {
	aperf, mperf, instr, energy uint64
	ok                          bool
}

// readResilient reads every core independently, isolating failures: a core
// whose reads fail (after retries) comes back ok=false with its previous
// baseline untouched. Returns the per-core reads, the package counter, and
// whether the package read succeeded.
func (s *Sampler) readResilient() (cores []coreRead, pkg uint64, pkgOK bool) {
	cores = make([]coreRead, s.nCores)
	for i := 0; i < s.nCores; i++ {
		var cr coreRead
		var err error
		if cr.aperf, err = s.readMSR(i, msr.IA32Aperf); err != nil {
			continue
		}
		if cr.mperf, err = s.readMSR(i, msr.IA32Mperf); err != nil {
			continue
		}
		if cr.instr, err = s.readMSR(i, msr.IA32FixedCtr0); err != nil {
			continue
		}
		if s.perCore {
			if cr.energy, err = s.readMSR(i, msr.PP0EnergyStatus); err != nil {
				continue
			}
		}
		cr.ok = true
		cores[i] = cr
		// Prime path: establish the baseline directly.
		if !s.primed {
			s.prevAperf[i], s.prevMperf[i], s.prevInstr[i] = cr.aperf, cr.mperf, cr.instr
			s.prevCore[i] = cr.energy
			s.baseOK[i] = true
		}
	}
	pkg, err := s.readMSR(0, msr.PkgEnergyStatus)
	pkgOK = err == nil
	if pkgOK && !s.primed {
		s.prevPkg = pkg
		s.pkgBaseOK = true
	}
	return cores, pkg, pkgOK
}

// noteStatus counts a classification.
func (s *Sampler) noteStatus(st CoreStatus) {
	if s.mStatus != nil {
		s.mStatus.With(st.String()).Inc()
	}
}

// Sample reads the device, derives telemetry relative to the previous read
// over the elapsed interval dt, and advances the baseline.
//
// In the default (fail-fast) mode any read error aborts the sample, exactly
// as before resilient mode existed. In resilient mode the error return is
// reserved for misuse (Sample before Prime, bad dt): read failures degrade
// the affected core to StatusDark instead.
func (s *Sampler) Sample(dt time.Duration) (Sample, error) {
	if !s.primed {
		return Sample{}, fmt.Errorf("telemetry: Sample before Prime")
	}
	if dt <= 0 {
		return Sample{}, fmt.Errorf("telemetry: non-positive interval %v", dt)
	}
	if s.resilient {
		return s.sampleResilient(dt)
	}
	prevA := append([]uint64(nil), s.prevAperf...)
	prevM := append([]uint64(nil), s.prevMperf...)
	prevI := append([]uint64(nil), s.prevInstr...)
	prevC := append([]uint64(nil), s.prevCore...)
	prevPkg := s.prevPkg
	if err := s.readStrict(); err != nil {
		return Sample{}, err
	}
	s.at += dt
	out := Sample{
		At:       s.at,
		Interval: dt,
		Cores:    make([]CoreSample, s.nCores),
	}
	anyExec := false
	for i := 0; i < s.nCores; i++ {
		cs := s.classify(i, coreRead{
			aperf: s.prevAperf[i], mperf: s.prevMperf[i],
			instr: s.prevInstr[i], energy: s.prevCore[i], ok: true,
		}, prevA[i], prevM[i], prevI[i], prevC[i], dt)
		if s.prevMperf[i] != prevM[i] {
			anyExec = true
		}
		out.Cores[i] = cs
	}
	out.PackagePower, out.PkgStatus = s.pkgPower(prevPkg, s.prevPkg, true, anyExec, dt)
	s.mSamples.Inc()
	return out, nil
}

// sampleResilient is the degraded-tolerant sampling path.
func (s *Sampler) sampleResilient(dt time.Duration) (Sample, error) {
	prevA := append([]uint64(nil), s.prevAperf...)
	prevM := append([]uint64(nil), s.prevMperf...)
	prevI := append([]uint64(nil), s.prevInstr...)
	prevC := append([]uint64(nil), s.prevCore...)
	prevPkg := s.prevPkg
	cores, pkg, pkgOK := s.readResilient()
	s.at += dt
	out := Sample{
		At:       s.at,
		Interval: dt,
		Cores:    make([]CoreSample, s.nCores),
	}
	anyExec := false
	for i := 0; i < s.nCores; i++ {
		cs := s.classify(i, cores[i], prevA[i], prevM[i], prevI[i], prevC[i], dt)
		if cores[i].ok && s.baseOK[i] && cores[i].mperf != prevM[i] {
			anyExec = true
		}
		out.Cores[i] = cs
	}
	out.PackagePower, out.PkgStatus = s.pkgPower(prevPkg, pkg, pkgOK, anyExec, dt)
	s.mSamples.Inc()
	return out, nil
}

// classify derives one core's sample and its status, advancing that core's
// baseline as appropriate. cur holds the freshly read counters (ok=false
// when the read failed); prev* are the pre-read baseline.
func (s *Sampler) classify(i int, cur coreRead, prevA, prevM, prevI, prevC uint64, dt time.Duration) CoreSample {
	cs := CoreSample{CPU: i}
	defer func() {
		s.lastStatus[i] = cs.Status
		s.noteStatus(cs.Status)
	}()

	if !cur.ok {
		// Reads failed after retries: the core is dark. Hold the baseline
		// (s.prev* untouched by readResilient) so a later recovery can
		// re-baseline cleanly.
		cs.Status = StatusDark
		return cs
	}
	// Commit the new baseline; classification below decides whether the
	// deltas derived against the old one are trustworthy.
	s.prevAperf[i], s.prevMperf[i], s.prevInstr[i] = cur.aperf, cur.mperf, cur.instr
	if s.perCore {
		s.prevCore[i] = cur.energy
	}
	hadBase := s.baseOK[i]
	s.baseOK[i] = true

	if !hadBase || s.lastStatus[i] == StatusDark || s.lastStatus[i] == StatusStale {
		// First good read after an outage (or ever): the old baseline is
		// missing or spans the outage, so deltas are meaningless. Zero the
		// derived values for one interval and resume from here — the
		// baseline just committed makes the next interval's deltas clean.
		cs.Status = StatusRecovering
		return cs
	}
	if cur.aperf < prevA || cur.mperf < prevM || cur.instr < prevI {
		// A monotonic 64-bit counter went backwards: the register file is
		// lying (or the device was swapped underneath us).
		cs.Status = StatusStale
		return cs
	}
	da, dm, di := cur.aperf-prevA, cur.mperf-prevM, cur.instr-prevI
	if da == 0 && dm == 0 && di == 0 {
		// Nothing advanced: the core spent the whole interval out of C0.
		// That is an idle core, not garbage — 0 IPS with a reason.
		cs.Status = StatusIdle
		return cs
	}
	if dm == 0 || da == 0 {
		// Torn sample: C0 residency and work done must advance together.
		// APERF moving while MPERF is frozen (or either frozen while
		// instructions retire) is internally inconsistent.
		cs.Status = StatusStale
		return cs
	}
	cs.Status = StatusOK
	cs.ActiveFreq = s.nom * units.Hertz(float64(da)/float64(dm))
	cs.IPS = float64(di) / dt.Seconds()
	if s.perCore {
		cs.Power = s.unit.FromCounts(msr.DeltaCounts(prevC, cur.energy)).Power(dt)
	}
	return cs
}

// pkgPower derives package power and its status. anyExec reports whether
// any core demonstrably executed this interval (MPERF advanced), which
// makes a frozen energy counter implausible rather than idle.
func (s *Sampler) pkgPower(prev, cur uint64, ok, anyExec bool, dt time.Duration) (units.Watts, CoreStatus) {
	defer func() { s.noteStatus(s.pkgLast) }()
	if !ok {
		// Unreadable: carry the last trustworthy power forward so the
		// control plane keeps a conservative estimate instead of seeing
		// zero draw.
		s.pkgLast = StatusDark
		return s.lastGoodW, StatusDark
	}
	hadBase := s.pkgBaseOK
	s.prevPkg, s.pkgBaseOK = cur, true
	if !hadBase || s.pkgLast == StatusDark || s.pkgLast == StatusStale {
		s.pkgLast = StatusRecovering
		return s.lastGoodW, StatusRecovering
	}
	if cur == prev && anyExec {
		// Cores executed but the package energy counter did not move: the
		// counter is stuck. Zero watts while work is being done would let
		// every policy raise frequencies without bound, so report the last
		// good reading instead.
		s.pkgLast = StatusStale
		return s.lastGoodW, StatusStale
	}
	w := s.unit.FromCounts(msr.DeltaCounts(prev, cur)).Power(dt)
	st := StatusOK
	if cur == prev {
		st = StatusIdle
	}
	s.pkgLast = st
	s.lastGoodW = w
	return w, st
}
