// Package telemetry is the simulator's turbostat: it samples the MSR device
// at an interval and derives, per core, the active frequency
// (nominal * ΔAPERF/ΔMPERF), instructions per second (ΔFIXED_CTR0), and
// power (Δenergy-status), plus package power — the exact variables the
// paper records once per second to drive its policies (Section 3.1).
package telemetry

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/msr"
	"repro/internal/units"
)

// CoreSample is one core's derived telemetry over an interval.
type CoreSample struct {
	CPU        int
	ActiveFreq units.Hertz // 0 if the core never entered C0
	IPS        float64
	Power      units.Watts // per-core power; zero on platforms without it
}

// Sample is one sampling interval's telemetry.
type Sample struct {
	At           time.Duration // virtual or wall time of the sample
	Interval     time.Duration
	PackagePower units.Watts
	Cores        []CoreSample
}

// TotalIPS sums instruction throughput across cores.
func (s Sample) TotalIPS() float64 {
	var t float64
	for _, c := range s.Cores {
		t += c.IPS
	}
	return t
}

// Sampler derives telemetry from successive MSR reads.
type Sampler struct {
	dev     msr.Device
	nCores  int
	nom     units.Hertz
	perCore bool
	unit    msr.EnergyUnit

	primed    bool
	at        time.Duration
	prevAperf []uint64
	prevMperf []uint64
	prevInstr []uint64
	prevCore  []uint64
	prevPkg   uint64

	// Optional instrumentation; nil handles no-op.
	mSamples    *metrics.Counter
	mMSRReads   *metrics.Counter
	mReadErrors *metrics.Counter
}

// Instrument registers the sampler's metrics on reg: samples taken, raw
// MSR reads issued, and read errors. Safe to call with a nil registry.
func (s *Sampler) Instrument(reg *metrics.Registry) {
	s.mSamples = reg.Counter("telemetry_samples_total", "Telemetry samples derived from MSR reads.")
	s.mMSRReads = reg.Counter("telemetry_msr_reads_total", "Raw MSR read operations issued by the sampler.")
	s.mReadErrors = reg.Counter("telemetry_read_errors_total", "MSR read operations that returned an error.")
}

// NewSampler builds a sampler over dev for nCores cores with nominal
// frequency nom. perCorePower selects whether per-core energy counters are
// meaningful (Ryzen) or only the package domain is (Skylake). The RAPL
// energy unit is read from the device.
func NewSampler(dev msr.Device, nCores int, nom units.Hertz, perCorePower bool) (*Sampler, error) {
	if nCores <= 0 {
		return nil, fmt.Errorf("telemetry: nCores must be positive")
	}
	if nom <= 0 {
		return nil, fmt.Errorf("telemetry: nominal frequency must be positive")
	}
	uv, err := dev.Read(0, msr.RAPLPowerUnit)
	if err != nil {
		return nil, fmt.Errorf("telemetry: reading power unit: %w", err)
	}
	return &Sampler{
		dev:       dev,
		nCores:    nCores,
		nom:       nom,
		perCore:   perCorePower,
		unit:      msr.DecodePowerUnit(uv),
		prevAperf: make([]uint64, nCores),
		prevMperf: make([]uint64, nCores),
		prevInstr: make([]uint64, nCores),
		prevCore:  make([]uint64, nCores),
	}, nil
}

// Prime records a baseline without producing a sample. It must be called
// once before the first Sample.
func (s *Sampler) Prime() error {
	if err := s.read(); err != nil {
		return err
	}
	s.primed = true
	return nil
}

// readMSR wraps the device read with instrumentation.
func (s *Sampler) readMSR(cpu int, reg uint32) (uint64, error) {
	s.mMSRReads.Inc()
	v, err := s.dev.Read(cpu, reg)
	if err != nil {
		s.mReadErrors.Inc()
	}
	return v, err
}

func (s *Sampler) read() error {
	for i := 0; i < s.nCores; i++ {
		a, err := s.readMSR(i, msr.IA32Aperf)
		if err != nil {
			return fmt.Errorf("telemetry: aperf cpu%d: %w", i, err)
		}
		m, err := s.readMSR(i, msr.IA32Mperf)
		if err != nil {
			return fmt.Errorf("telemetry: mperf cpu%d: %w", i, err)
		}
		ins, err := s.readMSR(i, msr.IA32FixedCtr0)
		if err != nil {
			return fmt.Errorf("telemetry: instr cpu%d: %w", i, err)
		}
		s.prevAperf[i], s.prevMperf[i], s.prevInstr[i] = a, m, ins
		if s.perCore {
			e, err := s.readMSR(i, msr.PP0EnergyStatus)
			if err != nil {
				return fmt.Errorf("telemetry: core energy cpu%d: %w", i, err)
			}
			s.prevCore[i] = e
		}
	}
	pkg, err := s.readMSR(0, msr.PkgEnergyStatus)
	if err != nil {
		return fmt.Errorf("telemetry: package energy: %w", err)
	}
	s.prevPkg = pkg
	return nil
}

// Sample reads the device, derives telemetry relative to the previous read
// over the elapsed interval dt, and advances the baseline.
func (s *Sampler) Sample(dt time.Duration) (Sample, error) {
	if !s.primed {
		return Sample{}, fmt.Errorf("telemetry: Sample before Prime")
	}
	if dt <= 0 {
		return Sample{}, fmt.Errorf("telemetry: non-positive interval %v", dt)
	}
	prevA := append([]uint64(nil), s.prevAperf...)
	prevM := append([]uint64(nil), s.prevMperf...)
	prevI := append([]uint64(nil), s.prevInstr...)
	prevC := append([]uint64(nil), s.prevCore...)
	prevPkg := s.prevPkg
	if err := s.read(); err != nil {
		return Sample{}, err
	}
	s.at += dt
	out := Sample{
		At:       s.at,
		Interval: dt,
		Cores:    make([]CoreSample, s.nCores),
	}
	sec := dt.Seconds()
	for i := 0; i < s.nCores; i++ {
		cs := CoreSample{CPU: i}
		if dm := s.prevMperf[i] - prevM[i]; dm > 0 {
			cs.ActiveFreq = s.nom * units.Hertz(float64(s.prevAperf[i]-prevA[i])/float64(dm))
		}
		cs.IPS = float64(s.prevInstr[i]-prevI[i]) / sec
		if s.perCore {
			cs.Power = s.unit.FromCounts(msr.DeltaCounts(prevC[i], s.prevCore[i])).Power(dt)
		}
		out.Cores[i] = cs
	}
	out.PackagePower = s.unit.FromCounts(msr.DeltaCounts(prevPkg, s.prevPkg)).Power(dt)
	s.mSamples.Inc()
	return out, nil
}
