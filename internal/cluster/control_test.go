package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/metrics/decisions"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/powerapi"
	"repro/internal/sim"
	"repro/internal/tracing"
	"repro/internal/units"
	"repro/internal/workload"
)

// wireNode is one loopback-HTTP node: machine, daemon, control-plane
// agent, and an obs server carrying the agent — the full cmd/powerd
// -listen -node-name stack, reached only through the wire.
type wireNode struct {
	name string
	m    *sim.Machine
	d    *daemon.Daemon
	srv  *httptest.Server
	tr   *tracing.Tracer
}

// newWireNode builds a Skylake node whose daemon starts at the given
// limit, which doubles as the agent's lease-fallback cap. A non-nil
// tracer makes the agent record a round trace per coordinator RPC.
func newWireNode(tb testing.TB, name string, limit units.Watts, rec *flight.Recorder, id int16, tr *tracing.Tracer) *wireNode {
	tb.Helper()
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		tb.Fatal(err)
	}
	apps := []string{"gcc", "cam4"}
	specs := make([]core.AppSpec, len(apps))
	for i, a := range apps {
		p := workload.MustByName(a)
		if err := m.Pin(workload.NewInstance(p), i); err != nil {
			tb.Fatal(err)
		}
		specs[i] = core.AppSpec{Name: a, Core: i, Shares: 50, AVX: p.AVX}
	}
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	reg := metrics.NewRegistry()
	journal := decisions.NewJournal(0)
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: limit,
		Metrics: reg, Journal: journal,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		tb.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		tb.Fatal(err)
	}
	agent, err := powerapi.NewAgent(powerapi.AgentConfig{
		Name: name, NodeID: id, Daemon: d, Fallback: limit,
		PolicyName: "frequency", Metrics: reg, Flight: rec, Tracer: tr,
	})
	if err != nil {
		tb.Fatal(err)
	}
	osrv := obs.New(reg, journal, obs.DaemonStatusFunc(d),
		obs.WithHandler(powerapi.PathPrefix, agent.Handler()))
	srv := httptest.NewServer(osrv.Handler())
	tb.Cleanup(srv.Close)
	tb.Cleanup(agent.Close)
	return &wireNode{name: name, m: m, d: d, srv: srv, tr: tr}
}

// TestPartitionFallsBackWithinTTL is the acceptance check for lease
// safety: run a coordinator over loopback-HTTP nodes, kill it mid-run, and
// verify every node reverts to its fallback cap within one lease TTL — and
// that, replaying the shared flight recorder, the sum of live caps never
// exceeded the room budget at any point.
func TestPartitionFallsBackWithinTTL(t *testing.T) {
	const n = 4
	budget := units.Watts(120)
	fallback := budget * 0.5 / n // == the coordinator's floor
	rec := flight.New(0)

	nodes := make([]*wireNode, n)
	ts := make([]Transport, n)
	for i := range nodes {
		// Node IDs are 1-based: the agent treats NodeID 0 as unset.
		nodes[i] = newWireNode(t, fmt.Sprintf("n%d", i), fallback, rec, int16(i+1), nil)
		nodes[i].m.Run(2 * time.Second) // non-zero power so nodes bid
		ts[i] = NewHTTPNode(nodes[i].name, nodes[i].srv.URL, "coord")
	}

	ttl := 250 * time.Millisecond
	c, err := NewOverTransports(ts, Config{
		Budget:   budget,
		Interval: 40 * time.Millisecond,
		LeaseTTL: ttl,
		Retries:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range nodes {
		if got := nd.d.Limit(); got != budget/n {
			t.Fatalf("node %d limit = %v after initial split, want %v", i, got, budget/n)
		}
	}

	// Coordinator runs and renews for a while...
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(40 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := c.Step(context.Background()); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	time.Sleep(7 * 40 * time.Millisecond)
	// ...and dies. No revocation reaches the nodes; only TTLs.
	close(stop)
	<-done

	deadline := time.Now().Add(2*ttl + time.Second)
	allBack := func() bool {
		for _, nd := range nodes {
			if nd.d.Limit() != fallback {
				return false
			}
		}
		return true
	}
	for !allBack() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for i, nd := range nodes {
		if got := nd.d.Limit(); got != fallback {
			t.Errorf("node %d limit = %v after coordinator death, want fallback %v", i, got, fallback)
		}
	}

	events := rec.Dump("partition").Events
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })

	// Every node must have expired within one TTL (plus timer slack) of
	// its last grant or renewal, and then reverted.
	var lastGrant, expired, reverted [n]time.Duration
	for _, e := range events {
		if e.Kind != flight.KindLease || e.Core < 1 || int(e.Core) > n {
			continue
		}
		idx := int(e.Core) - 1
		switch e.Arg {
		case flight.LeaseGrant, flight.LeaseRenew:
			lastGrant[idx] = e.Wall
		case flight.LeaseExpire:
			expired[idx] = e.Wall
		case flight.LeaseFallback:
			reverted[idx] = e.Wall
		}
	}
	for i := 0; i < n; i++ {
		if lastGrant[i] == 0 || expired[i] == 0 || reverted[i] == 0 {
			t.Fatalf("node %d missing lease lifecycle events (grant=%v expire=%v fallback=%v)",
				i, lastGrant[i], expired[i], reverted[i])
		}
		if lag := expired[i] - lastGrant[i]; lag > ttl+500*time.Millisecond {
			t.Errorf("node %d expired %v after its last grant, want within one TTL (%v)", i, lag, ttl)
		}
	}

	// Replay the lease ledger: at every event, the sum of the caps nodes
	// are actually enforcing must stay within the room budget. This is
	// the paper-level safety property: no partition over-commits power.
	var caps [n]float64
	for i := range caps {
		caps[i] = float64(fallback) * 1e6 // µW; nodes start at their fallback
	}
	budgetUW := float64(budget) * 1e6
	for _, e := range events {
		if e.Kind != flight.KindLease || e.Core < 1 || int(e.Core) > n {
			continue
		}
		switch e.Arg {
		case flight.LeaseGrant, flight.LeaseRenew, flight.LeaseFallback:
			caps[e.Core-1] = float64(e.Value)
		}
		var sum float64
		for _, v := range caps {
			sum += v
		}
		if sum > budgetUW*1.000001 {
			t.Fatalf("after seq %d (%s node %d), granted caps sum to %.1f W > budget %v",
				e.Seq, flight.LeaseName(e.Arg), int(e.Core)-1, sum/1e6, budget)
		}
	}
}

// flakyTransport is an in-process Transport whose failures are switchable.
type flakyTransport struct {
	mu    sync.Mutex
	name  string
	limit units.Watts
	power units.Watts
	max   units.Watts
	fail  bool
}

func (f *flakyTransport) Name() string { return f.name }

func (f *flakyTransport) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *flakyTransport) Report(context.Context) (Report, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return Report{}, fmt.Errorf("%s: connection refused", f.name)
	}
	return Report{Power: f.power, Limit: f.limit, Max: f.max}, nil
}

func (f *flakyTransport) Grant(_ context.Context, g Grant) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return fmt.Errorf("%s: connection refused", f.name)
	}
	f.limit = g.Limit
	return nil
}

// TestQuarantineAndReadmission: a node that keeps failing is quarantined;
// once its lease expires its reservation decays to the floor so the
// healthy node can absorb the freed budget; and its first good report
// re-admits it.
func TestQuarantineAndReadmission(t *testing.T) {
	reg := metrics.NewRegistry()
	now := time.Unix(1000, 0)
	f0 := &flakyTransport{name: "flaky", power: 48, max: 85}
	f1 := &flakyTransport{name: "steady", power: 48, max: 85}
	cfg := Config{
		Budget:          100,
		Interval:        time.Second,
		LeaseTTL:        5 * time.Second,
		NodeTimeout:     50 * time.Millisecond,
		Retries:         -1,
		RetryBackoff:    time.Millisecond,
		QuarantineAfter: 2,
		Metrics:         reg,
		now:             func() time.Time { return now },
	}
	c, err := NewOverTransports([]Transport{f0, f1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f0.limit != 50 || f1.limit != 50 {
		t.Fatalf("initial split = %v/%v", f0.limit, f1.limit)
	}

	ctx := context.Background()
	f0.setFail(true)
	if err := c.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if c.Quarantined(0) {
		t.Fatal("quarantined after a single failure, want after 2")
	}
	if err := c.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if !c.Quarantined(0) {
		t.Fatal("not quarantined after 2 consecutive failed steps")
	}
	if v := reg.GaugeVec("cluster_node_quarantined", "", "node").With("flaky").Value(); v != 1 {
		t.Errorf("quarantine gauge = %v", v)
	}
	if v := reg.CounterVec("cluster_transport_failures_total", "", "node").With("flaky").Value(); v < 2 {
		t.Errorf("failure counter = %v", v)
	}

	// While the dead node's lease lives, its 50 W stay reserved: the
	// healthy node cannot be granted past budget - reservation.
	if f1.limit > 50 {
		t.Errorf("healthy node at %v W while dead node's lease still holds 50 W", f1.limit)
	}

	// After the lease expires the reservation decays to the floor (25 W)
	// and the healthy node absorbs the freed budget.
	now = now.Add(6 * time.Second)
	if err := c.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if f1.limit <= 50 {
		t.Errorf("healthy node still at %v W after dead node's lease expired", f1.limit)
	}
	if f1.limit > 75 { // budget 100 - floor 25 reserved for the dead node
		t.Errorf("healthy node at %v W, over budget minus the dead node's floor", f1.limit)
	}

	// Recovery: the first good report re-admits the node and budget
	// flows back.
	f0.setFail(false)
	if err := c.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if c.Quarantined(0) {
		t.Error("still quarantined after a good report")
	}
	if v := reg.GaugeVec("cluster_node_quarantined", "", "node").With("flaky").Value(); v != 0 {
		t.Errorf("quarantine gauge = %v after re-admission", v)
	}
	if f0.limit < 25 {
		t.Errorf("re-admitted node limit = %v, below the floor", f0.limit)
	}
	total := float64(f0.limit + f1.limit)
	if total > 100.001 {
		t.Errorf("granted %v W total, over the 100 W budget", total)
	}
}

// BenchmarkCoordinatorTick measures one reallocation round over 64
// loopback-HTTP nodes: 64 status fetches fanned out concurrently plus the
// grant wave the plan produces.
func BenchmarkCoordinatorTick(b *testing.B) {
	const n = 64
	budget := units.Watts(n * 30)
	nodes := make([]*wireNode, n)
	ts := make([]Transport, n)
	for i := range nodes {
		nodes[i] = newWireNode(b, fmt.Sprintf("n%d", i), budget/n, nil, int16(i), nil)
		nodes[i].m.Run(time.Second)
		ts[i] = NewHTTPNode(nodes[i].name, nodes[i].srv.URL, "bench")
	}
	c, err := NewOverTransports(ts, Config{
		Budget:   budget,
		LeaseTTL: time.Hour,
		Retries:  -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Step(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
