package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/tracing"
	"repro/internal/units"
)

// delayTripper injects latency in front of every RPC to one node — the
// intentional straggler.
type delayTripper struct {
	d  time.Duration
	rt http.RoundTripper
}

func (t delayTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	time.Sleep(t.d)
	return t.rt.RoundTrip(r)
}

// TestMergedTimelineFlagsStraggler is the acceptance check for
// distributed round tracing: a coordinator over 16 loopback-HTTP nodes,
// one of them intentionally delayed, runs several reallocation rounds
// with tracing on both sides. Merging the coordinator dump with all 16
// node dumps must resolve every round to per-node span trees by round
// ID, leave no partition gaps, and flag the delayed node as the
// straggler — in the merged timeline and in the fleet rollups alike.
func TestMergedTimelineFlagsStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("16-node loopback cluster")
	}
	const (
		n       = 16
		rounds  = 5
		slow    = 7 // index of the delayed node
		delay   = 40 * time.Millisecond
		perNode = units.Watts(30)
	)
	budget := perNode * n

	coordTracer := tracing.New("coord", 0)
	fleet := NewFleet(budget, nil)

	nodes := make([]*wireNode, n)
	ts := make([]Transport, n)
	for i := range nodes {
		name := fmt.Sprintf("n%02d", i)
		nodes[i] = newWireNode(t, name, perNode, nil, int16(i+1), tracing.New(name, 0))
		nodes[i].m.Run(2 * time.Second) // non-zero power so nodes bid
		h := NewHTTPNode(name, nodes[i].srv.URL, "coord").CollectMetrics()
		if i == slow {
			h.WithHTTPClient(&http.Client{
				Transport: delayTripper{d: delay, rt: http.DefaultTransport},
			})
		}
		ts[i] = h
	}

	c, err := NewOverTransports(ts, Config{
		Budget:   budget,
		LeaseTTL: time.Hour,
		Retries:  -1,
		Tracer:   coordTracer,
		Fleet:    fleet,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		if err := c.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Round(); got != rounds {
		t.Fatalf("coordinator round = %d, want %d", got, rounds)
	}

	// Serialize every dump through the JSON log format and back — the
	// same path powerdump walks when merging files from many machines.
	reload := func(l tracing.Log) tracing.Log {
		var buf bytes.Buffer
		if err := l.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := tracing.ReadLog(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	coordLog := reload(coordTracer.Log())
	nodeLogs := make([]tracing.Log, n)
	for i, nd := range nodes {
		nodeLogs[i] = reload(nd.tr.Log())
	}

	tl := tracing.Merge(coordLog, nodeLogs)
	if len(tl.Rounds) != rounds {
		t.Fatalf("merged %d rounds, want %d", len(tl.Rounds), rounds)
	}
	if tl.GapRounds != 0 {
		t.Errorf("%d rounds with partition gaps, want 0", tl.GapRounds)
	}
	for _, mr := range tl.Rounds {
		if len(mr.Nodes) != n {
			t.Fatalf("round %d resolved %d nodes, want %d", mr.ID, len(mr.Nodes), n)
		}
		if mr.Plan == nil {
			t.Errorf("round %d has no plan span", mr.ID)
		}
		for _, nr := range mr.Nodes {
			if nr.Report == nil {
				t.Fatalf("round %d node %s has no report span", mr.ID, nr.Node)
			}
			if nr.Missing || nr.Record == nil {
				t.Fatalf("round %d node %s has no node-side record", mr.ID, nr.Node)
			}
			if nr.Record.ID != mr.ID {
				t.Fatalf("round %d node %s joined record %d", mr.ID, nr.Node, nr.Record.ID)
			}
			if len(nr.Record.Spans) == 0 {
				t.Errorf("round %d node %s record has no spans", mr.ID, nr.Node)
			}
		}
	}

	// The delayed node dominates the straggler ranking, in the merged
	// timeline and the fleet rollups alike. The delay (40 ms against a
	// loopback median well under 5 ms) clears the flagging rule in every
	// round; allow one round of scheduler-noise slack.
	slowName := nodes[slow].name
	if len(tl.Stragglers) == 0 || tl.Stragglers[0].Node != slowName {
		t.Fatalf("timeline stragglers = %+v, want %s first", tl.Stragglers, slowName)
	}
	if tl.Stragglers[0].Rounds < rounds-1 {
		t.Errorf("straggler flagged in %d/%d rounds", tl.Stragglers[0].Rounds, rounds)
	}
	flagged := 0
	for _, mr := range tl.Rounds {
		if mr.Straggler == slowName {
			flagged++
		}
	}
	if flagged < rounds-1 {
		t.Errorf("per-round straggler = %s in %d/%d rounds", slowName, flagged, rounds)
	}

	snap := fleet.Snapshot()
	if len(snap.Nodes) != n {
		t.Fatalf("fleet tracked %d nodes, want %d", len(snap.Nodes), n)
	}
	if len(snap.Stragglers) == 0 || snap.Stragglers[0].Node != slowName {
		t.Fatalf("fleet stragglers = %+v, want %s first", snap.Stragglers, slowName)
	}
	if snap.TotalPowerWatts <= 0 {
		t.Errorf("fleet total power = %v", snap.TotalPowerWatts)
	}
	if snap.RoundLatency.Samples != rounds {
		t.Errorf("fleet observed %d rounds, want %d", snap.RoundLatency.Samples, rounds)
	}
	// Piggybacked metrics reached the fleet (delta protocol engaged).
	for _, row := range snap.Nodes {
		if row.MetricsRev == 0 {
			t.Errorf("node %s has no metrics snapshot", row.Name)
		}
	}
}
