package cluster

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/powerapi"
	"repro/internal/stats"
	"repro/internal/tracing"
	"repro/internal/units"
)

// StragglerTopK bounds the straggler ranking a fleet snapshot carries.
const StragglerTopK = 5

// EnergyTopK bounds the top-energy-app ranking a fleet snapshot carries.
const EnergyTopK = 5

// NodeObservation is what one reallocation round learned about one node:
// the transport outcome, the report RPC latency, and the report itself
// (with its piggybacked status and metrics snapshot when the transport
// collects them).
type NodeObservation struct {
	Node   string
	Err    error
	RPC    time.Duration
	Report Report
}

// fleetNode is the aggregator's per-node state.
type fleetNode struct {
	name        string
	lastRound   uint64
	missed      int // consecutive rounds without a good report
	totalMissed int
	straggles   int // rounds this node was the straggler
	worstRPC    time.Duration
	power       units.Watts
	limit       units.Watts
	status      *powerapi.NodeStatus
	metricsRev  uint64
	vals        map[string]float64 // delta-merged metrics snapshot
	rpcAcc      stats.Accumulator
	rpcRes      *stats.Reservoir
}

// Fleet aggregates per-node status reports and metrics snapshots into
// room-level rollups: total power against budget, per-app watts, lease
// churn, round-latency percentiles, straggler ranking, and version
// skew. The coordinator feeds it one ObserveRound per reallocation
// round; /debug/fleet and `powerctl top` render Snapshot. All methods
// are safe for concurrent use and on a nil receiver.
type Fleet struct {
	budget units.Watts

	mu       sync.Mutex
	round    uint64
	nodes    map[string]*fleetNode
	order    []string
	roundAcc stats.Accumulator
	roundRes *stats.Reservoir

	// Optional room-level rollup metrics on the coordinator registry.
	mPower     *metrics.Gauge
	mBudget    *metrics.Gauge
	mNodes     *metrics.Gauge
	mReporting *metrics.Gauge
	mAppWatts  *metrics.GaugeVec
	mRoundSec  *metrics.Histogram
	mStraggler *metrics.Counter

	// Energy rollups, fed from the EnergyStatus nodes piggyback on their
	// status replies.
	mEnergy       *metrics.Gauge
	mEnergyBudget *metrics.Gauge
	mEnergyCost   *metrics.Gauge
	mEnergyCarbon *metrics.Gauge
	mAnomalies    *metrics.GaugeVec

	// SLO rollups, fed from the SLOStatus nodes piggyback on their
	// status replies.
	mSLOServices *metrics.Gauge
	mSLOAttain   *metrics.Gauge
}

// NewFleet builds an aggregator for a room with the given budget,
// optionally publishing rollup gauges on reg.
func NewFleet(budget units.Watts, reg *metrics.Registry) *Fleet {
	f := &Fleet{
		budget:   budget,
		nodes:    make(map[string]*fleetNode),
		roundRes: stats.NewReservoir(0),
	}
	if reg != nil {
		f.mPower = reg.Gauge("fleet_power_watts", "Power summed over the latest good report of every node.")
		f.mBudget = reg.Gauge("fleet_budget_watts", "Room power budget.")
		f.mNodes = reg.Gauge("fleet_nodes", "Nodes the coordinator manages.")
		f.mReporting = reg.Gauge("fleet_nodes_reporting", "Nodes whose report succeeded in the latest round.")
		f.mAppWatts = reg.GaugeVec("fleet_app_watts", "Per-application watts summed across nodes, from the latest reports.", "app")
		f.mRoundSec = reg.Histogram("fleet_round_seconds", "End-to-end latency of one coordinator reallocation round.", metrics.DefBuckets)
		f.mStraggler = reg.Counter("fleet_straggler_rounds_total", "Rounds in which some node was flagged as the straggler.")
		f.mEnergy = reg.Gauge("fleet_energy_joules", "Energy attributed across the fleet, summed over the latest ledger summary of every node.")
		f.mEnergyBudget = reg.Gauge("fleet_energy_budget_joules", "Room budget integrated over the longest node run clock — what the fleet was allowed to burn.")
		f.mEnergyCost = reg.Gauge("fleet_energy_cost_usd", "Fleet energy cost under the nodes' rate schedules.")
		f.mEnergyCarbon = reg.Gauge("fleet_energy_carbon_grams", "Fleet carbon footprint under the nodes' rate schedules.")
		f.mAnomalies = reg.GaugeVec("fleet_anomalies_total", "Ledger anomalies summed across nodes, by detector kind.", "kind")
		f.mSLOServices = reg.Gauge("fleet_slo_services", "Latency-service instances reporting SLO telemetry across the fleet.")
		f.mSLOAttain = reg.Gauge("fleet_slo_attainment", "Fraction of reporting service instances meeting their p99 objective (1 when none report).")
		f.mBudget.Set(float64(budget))
	}
	return f
}

// ObserveRound folds one reallocation round into the rollups. total is
// the round's end-to-end latency as the coordinator measured it.
func (f *Fleet) ObserveRound(round uint64, total time.Duration, obs []NodeObservation) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.round = round
	f.roundAcc.Add(total.Seconds())
	f.roundRes.Add(total.Seconds())

	reporting := 0
	var lats []time.Duration
	var latNodes []*fleetNode
	for _, o := range obs {
		n := f.nodes[o.Node]
		if n == nil {
			n = &fleetNode{name: o.Node, rpcRes: stats.NewReservoir(0)}
			f.nodes[o.Node] = n
			f.order = append(f.order, o.Node)
		}
		if o.Err != nil {
			n.missed++
			n.totalMissed++
			continue
		}
		reporting++
		n.missed = 0
		n.lastRound = round
		n.power = o.Report.Power
		n.limit = o.Report.Limit
		n.rpcAcc.Add(o.RPC.Seconds())
		n.rpcRes.Add(o.RPC.Seconds())
		if o.RPC > n.worstRPC {
			n.worstRPC = o.RPC
		}
		lats = append(lats, o.RPC)
		latNodes = append(latNodes, n)
		if st := o.Report.Status; st != nil {
			n.status = st
			f.mergeMetricsLocked(n, st, o.Report.MetricsFull)
		}
	}
	if at := tracing.StragglerIn(lats); at >= 0 {
		latNodes[at].straggles++
		f.mStraggler.Inc()
	}

	var totalPower units.Watts
	appWatts := map[string]float64{}
	var energyJ, costUSD, carbonG, maxElapsed float64
	anomalies := map[string]float64{}
	sloTotal, sloMet := 0, 0
	for _, n := range f.nodes {
		totalPower += n.power
		if n.status == nil {
			continue
		}
		for _, app := range n.status.Apps {
			appWatts[app.Name] += app.Watts
		}
		if s := n.status.SLO; s != nil {
			for _, svc := range s.Services {
				sloTotal++
				if svc.Met {
					sloMet++
				}
			}
		}
		if e := n.status.Energy; e != nil {
			energyJ += e.TotalJoules
			costUSD += e.CostUSD
			carbonG += e.CarbonGrams
			if e.ElapsedSeconds > maxElapsed {
				maxElapsed = e.ElapsedSeconds
			}
			for k, v := range e.Anomalies {
				anomalies[k] += float64(v)
			}
		}
	}
	f.mu.Unlock()

	f.mPower.Set(float64(totalPower))
	f.mNodes.Set(float64(len(obs)))
	f.mReporting.Set(float64(reporting))
	f.mRoundSec.Observe(total.Seconds())
	if f.mAppWatts != nil {
		for app, w := range appWatts {
			f.mAppWatts.With(app).Set(w)
		}
	}
	f.mEnergy.Set(energyJ)
	f.mEnergyBudget.Set(float64(f.budget) * maxElapsed)
	f.mEnergyCost.Set(costUSD)
	f.mEnergyCarbon.Set(carbonG)
	if f.mAnomalies != nil {
		for kind, v := range anomalies {
			f.mAnomalies.With(kind).Set(v)
		}
	}
	f.mSLOServices.Set(float64(sloTotal))
	attain := 1.0
	if sloTotal > 0 {
		attain = float64(sloMet) / float64(sloTotal)
	}
	f.mSLOAttain.Set(attain)
}

// mergeMetricsLocked folds a node's metrics snapshot into its merged
// view: a full snapshot replaces the map (dropping stale series), a
// delta overlays only the changed series. Caller holds f.mu.
func (f *Fleet) mergeMetricsLocked(n *fleetNode, st *powerapi.NodeStatus, full bool) {
	if st.Metrics == nil && st.MetricsRev == 0 {
		return
	}
	n.metricsRev = st.MetricsRev
	if full || n.vals == nil {
		n.vals = make(map[string]float64, len(st.Metrics))
	}
	for k, v := range st.Metrics {
		n.vals[k] = v
	}
}

// LatencySummary condenses a latency distribution to what `top` shows.
type LatencySummary struct {
	P50MS   float64 `json:"p50_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
	Samples int     `json:"samples"`
}

func summarize(acc stats.Accumulator, res *stats.Reservoir) LatencySummary {
	return LatencySummary{
		P50MS:   res.Percentile(50) * 1e3,
		P99MS:   res.Percentile(99) * 1e3,
		MaxMS:   acc.Max() * 1e3,
		Samples: acc.Count(),
	}
}

// FleetNode is one node's row in a fleet snapshot.
type FleetNode struct {
	Name         string              `json:"name"`
	PowerWatts   float64             `json:"power_watts"`
	LimitWatts   float64             `json:"limit_watts"`
	Policy       string              `json:"policy,omitempty"`
	Draining     bool                `json:"draining,omitempty"`
	Lease        *powerapi.LeaseInfo `json:"lease,omitempty"`
	LastRound    uint64              `json:"last_round"`
	MissedRounds int                 `json:"missed_rounds,omitempty"`
	TotalMissed  int                 `json:"total_missed,omitempty"`
	RPC          LatencySummary      `json:"rpc"`
	MetricsRev   uint64              `json:"metrics_rev,omitempty"`
	EnergyJoules float64             `json:"energy_joules,omitempty"`
	CostUSD      float64             `json:"cost_usd,omitempty"`
	Anomalies    uint64              `json:"anomalies,omitempty"`
	SLOServices  int                 `json:"slo_services,omitempty"`
	SLOMet       int                 `json:"slo_met,omitempty"`
}

// FleetApp is one application's room-wide power rollup.
type FleetApp struct {
	Name  string  `json:"name"`
	Watts float64 `json:"watts"`
	Nodes int     `json:"nodes"`
}

// FleetAppEnergy is one application's room-wide energy rollup.
type FleetAppEnergy struct {
	Name        string  `json:"name"`
	Joules      float64 `json:"joules"`
	CostUSD     float64 `json:"cost_usd"`
	CarbonGrams float64 `json:"carbon_grams"`
	Nodes       int     `json:"nodes"`
}

// FleetServiceSLO is one latency service's room-wide SLO rollup: how
// many node instances report it, how many meet their p99 objective, and
// the worst tail across them.
type FleetServiceSLO struct {
	Name       string  `json:"name"`
	Nodes      int     `json:"nodes"`
	MetNodes   int     `json:"met_nodes"`
	WorstP99MS float64 `json:"worst_p99_ms"`
	TargetMS   float64 `json:"target_ms,omitempty"`
	Rate       float64 `json:"rate"`
}

// FleetStraggler ranks one node's straggler record.
type FleetStraggler struct {
	Node    string  `json:"node"`
	Rounds  int     `json:"rounds"`
	WorstMS float64 `json:"worst_ms"`
}

// FleetSnapshot is the room-level rollup served at /debug/fleet.
type FleetSnapshot struct {
	Round           uint64             `json:"round"`
	BudgetWatts     float64            `json:"budget_watts"`
	TotalPowerWatts float64            `json:"total_power_watts"`
	Nodes           []FleetNode        `json:"nodes"`
	Apps            []FleetApp         `json:"apps,omitempty"`
	RoundLatency    LatencySummary     `json:"round_latency"`
	LeaseEvents     map[string]float64 `json:"lease_events,omitempty"`
	Stragglers      []FleetStraggler   `json:"stragglers,omitempty"`
	Versions        []string           `json:"versions,omitempty"`
	MixedVersions   bool               `json:"mixed_versions,omitempty"`

	// Energy rollups from the nodes' piggybacked ledger summaries.
	// EnergyBudgetJoules integrates the room budget over the longest node
	// run clock — the fleet's allowance over the same window the joules
	// were burned in — so EnergyJoules/EnergyBudgetJoules reads directly
	// as budget utilisation.
	EnergyJoules       float64           `json:"energy_joules,omitempty"`
	EnergyBudgetJoules float64           `json:"energy_budget_joules,omitempty"`
	OvershootJoules    float64           `json:"overshoot_joules,omitempty"`
	ExcludedJoules     float64           `json:"excluded_joules,omitempty"`
	EnergyCostUSD      float64           `json:"energy_cost_usd,omitempty"`
	EnergyCarbonGrams  float64           `json:"energy_carbon_grams,omitempty"`
	TopEnergyApps      []FleetAppEnergy  `json:"top_energy_apps,omitempty"`
	AnomalyCounts      map[string]uint64 `json:"anomaly_counts,omitempty"`

	// SLO rollups from the nodes' piggybacked service telemetry.
	// SLOAttainment is SLOMet/SLOTotal, only meaningful when SLOTotal is
	// non-zero.
	SLOTotal      int               `json:"slo_total,omitempty"`
	SLOMet        int               `json:"slo_met,omitempty"`
	SLOAttainment float64           `json:"slo_attainment,omitempty"`
	SLOServices   []FleetServiceSLO `json:"slo_services,omitempty"`
}

// Snapshot renders the current rollups. Nil-safe (returns zero value).
func (f *Fleet) Snapshot() FleetSnapshot {
	if f == nil {
		return FleetSnapshot{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	snap := FleetSnapshot{
		Round:        f.round,
		BudgetWatts:  float64(f.budget),
		RoundLatency: summarize(f.roundAcc, f.roundRes),
		LeaseEvents:  map[string]float64{},
	}
	apps := map[string]*FleetApp{}
	energyApps := map[string]*FleetAppEnergy{}
	sloSvcs := map[string]*FleetServiceSLO{}
	versions := map[string]bool{}
	var maxElapsed float64
	for _, name := range f.order {
		n := f.nodes[name]
		row := FleetNode{
			Name:         n.name,
			PowerWatts:   float64(n.power),
			LimitWatts:   float64(n.limit),
			LastRound:    n.lastRound,
			MissedRounds: n.missed,
			TotalMissed:  n.totalMissed,
			RPC:          summarize(n.rpcAcc, n.rpcRes),
			MetricsRev:   n.metricsRev,
		}
		if st := n.status; st != nil {
			row.Policy = st.Policy
			row.Draining = st.Draining
			row.Lease = st.Lease
			for _, app := range st.Apps {
				a := apps[app.Name]
				if a == nil {
					a = &FleetApp{Name: app.Name}
					apps[app.Name] = a
				}
				a.Watts += app.Watts
				a.Nodes++
			}
			if s := st.SLO; s != nil {
				for _, svc := range s.Services {
					row.SLOServices++
					snap.SLOTotal++
					if svc.Met {
						row.SLOMet++
						snap.SLOMet++
					}
					fs := sloSvcs[svc.Name]
					if fs == nil {
						fs = &FleetServiceSLO{Name: svc.Name}
						sloSvcs[svc.Name] = fs
					}
					fs.Nodes++
					if svc.Met {
						fs.MetNodes++
					}
					if svc.P99MS > fs.WorstP99MS {
						fs.WorstP99MS = svc.P99MS
					}
					if svc.TargetMS > 0 {
						fs.TargetMS = svc.TargetMS
					}
					fs.Rate += svc.Rate
				}
			}
			if e := st.Energy; e != nil {
				row.EnergyJoules = e.TotalJoules
				row.CostUSD = e.CostUSD
				for _, v := range e.Anomalies {
					row.Anomalies += v
				}
				snap.EnergyJoules += e.TotalJoules
				snap.OvershootJoules += e.OvershootJoules
				snap.ExcludedJoules += float64(e.ExcludedUJ) / 1e6
				snap.EnergyCostUSD += e.CostUSD
				snap.EnergyCarbonGrams += e.CarbonGrams
				if e.ElapsedSeconds > maxElapsed {
					maxElapsed = e.ElapsedSeconds
				}
				for k, v := range e.Anomalies {
					if snap.AnomalyCounts == nil {
						snap.AnomalyCounts = map[string]uint64{}
					}
					snap.AnomalyCounts[k] += v
				}
				for _, ae := range e.Apps {
					fa := energyApps[ae.Name]
					if fa == nil {
						fa = &FleetAppEnergy{Name: ae.Name}
						energyApps[ae.Name] = fa
					}
					fa.Joules += ae.Joules
					fa.Nodes++
					// Split the node's cost and carbon over its apps in
					// proportion to attributed joules; unattributed and
					// excluded energy stays in the node-level totals.
					if e.TotalJoules > 0 {
						fa.CostUSD += e.CostUSD * ae.Joules / e.TotalJoules
						fa.CarbonGrams += e.CarbonGrams * ae.Joules / e.TotalJoules
					}
				}
			}
		}
		snap.TotalPowerWatts += float64(n.power)
		for k, v := range n.vals {
			if ev, ok := leaseEvent(k); ok {
				snap.LeaseEvents[ev] += v
			}
			if strings.HasPrefix(k, "padpd_build_info{") {
				versions[k] = true
			}
		}
		snap.Nodes = append(snap.Nodes, row)
		if n.straggles > 0 {
			snap.Stragglers = append(snap.Stragglers, FleetStraggler{
				Node: n.name, Rounds: n.straggles, WorstMS: float64(n.worstRPC) / 1e6,
			})
		}
	}
	for _, a := range apps {
		snap.Apps = append(snap.Apps, *a)
	}
	sort.Slice(snap.Apps, func(i, j int) bool {
		if snap.Apps[i].Watts != snap.Apps[j].Watts {
			return snap.Apps[i].Watts > snap.Apps[j].Watts
		}
		return snap.Apps[i].Name < snap.Apps[j].Name
	})
	sort.Slice(snap.Stragglers, func(i, j int) bool {
		a, b := snap.Stragglers[i], snap.Stragglers[j]
		if a.Rounds != b.Rounds {
			return a.Rounds > b.Rounds
		}
		return a.WorstMS > b.WorstMS
	})
	if len(snap.Stragglers) > StragglerTopK {
		snap.Stragglers = snap.Stragglers[:StragglerTopK]
	}
	snap.EnergyBudgetJoules = float64(f.budget) * maxElapsed
	for _, a := range energyApps {
		snap.TopEnergyApps = append(snap.TopEnergyApps, *a)
	}
	sort.Slice(snap.TopEnergyApps, func(i, j int) bool {
		a, b := snap.TopEnergyApps[i], snap.TopEnergyApps[j]
		if a.Joules != b.Joules {
			return a.Joules > b.Joules
		}
		return a.Name < b.Name
	})
	if len(snap.TopEnergyApps) > EnergyTopK {
		snap.TopEnergyApps = snap.TopEnergyApps[:EnergyTopK]
	}
	if snap.SLOTotal > 0 {
		snap.SLOAttainment = float64(snap.SLOMet) / float64(snap.SLOTotal)
	}
	for _, s := range sloSvcs {
		snap.SLOServices = append(snap.SLOServices, *s)
	}
	sort.Slice(snap.SLOServices, func(i, j int) bool {
		a, b := snap.SLOServices[i], snap.SLOServices[j]
		// Worst-attaining services first, then by name for stability.
		am, bm := float64(a.MetNodes)/float64(a.Nodes), float64(b.MetNodes)/float64(b.Nodes)
		if am != bm {
			return am < bm
		}
		return a.Name < b.Name
	})
	for v := range versions {
		snap.Versions = append(snap.Versions, v)
	}
	sort.Strings(snap.Versions)
	snap.MixedVersions = len(snap.Versions) > 1
	if len(snap.LeaseEvents) == 0 {
		snap.LeaseEvents = nil
	}
	return snap
}

// leaseEvent extracts the event label from a lease-churn series key,
// e.g. `powerapi_lease_events_total{event="renew"}` -> "renew".
func leaseEvent(key string) (string, bool) {
	const prefix = `powerapi_lease_events_total{event="`
	if !strings.HasPrefix(key, prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(key, prefix)
	i := strings.IndexByte(rest, '"')
	if i < 0 {
		return "", false
	}
	return rest[:i], true
}
