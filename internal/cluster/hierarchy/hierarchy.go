// Package hierarchy stacks the machine-room coordinator into the
// datacenter tree the paper's deployment section sketches: rooms under
// rows under buildings, each tier a coordinator over its children that
// presents its whole subtree to the tier above as ONE synthetic node.
//
// The trick is that no new protocol exists between tiers. A Tier runs
// the unmodified cluster.Coordinator over its children and fronts it
// with the unmodified powerapi.Agent: demand aggregates upward as the
// one status report any node would send (power, max, energy rollups,
// plus a TierStatus describing the subtree), and budget cascades
// downward as the one TTL'd lease any node would receive — the agent's
// SetLimit becomes the coordinator's SetBudget. Because a tier refuses
// its own lease until the caps it holds over its children provably fit
// under the new budget, the flat coordinator's partition-safety
// invariants — Σ granted ≤ budget, fallback caps on lease expiry,
// shrink-before-grow — hold recursively at every level: a building that
// dies strands its rows, whose leases expire into fallback caps, whose
// floors bound their leaves, all without any tier seeing past its
// children.
package hierarchy

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/powerapi"
	"repro/internal/tracing"
	"repro/internal/units"
)

// TierConfig parameterises one mid-tier (or root) coordinator.
type TierConfig struct {
	// Name identifies the tier: its agent's node name toward the parent
	// and its round-ID namespace (tracing.RoundIDBase) in merged traces.
	Name string

	// Level is the tier's place in the tree for display and rollups —
	// "row", "building". Defaults to "tier".
	Level string

	// NodeID stamps the tier agent's flight events in a shared recorder.
	NodeID int16

	// Budget is the power the tier initially cascades. Ignored with
	// StartAtFallback, which begins at the Fallback cap until the parent
	// grants more — the conservative default for mid-tiers, whose real
	// budget always arrives as a lease.
	Budget          units.Watts
	StartAtFallback bool

	// Fallback is the cap the tier reverts to when its own lease expires.
	// It doubles as the coordinator's FloorBudget: the floors (and lease
	// fallback caps) promised to children are carved from this constant,
	// so they stay safe under any budget the tier can be held to.
	Fallback units.Watts

	// FloorFraction, Interval, LeaseTTL, NodeTimeout, Retries,
	// RetryBackoff, and QuarantineAfter pass through to the tier's
	// coordinator (see cluster.Config for defaults).
	FloorFraction   float64
	Interval        time.Duration
	LeaseTTL        time.Duration
	NodeTimeout     time.Duration
	Retries         int
	RetryBackoff    time.Duration
	QuarantineAfter int

	// Metrics, Flight, Tracer, and Fleet instrument both halves of the
	// tier: the coordinator records rounds and the agent records its
	// lease transitions into the same registries, so one dump shows the
	// tier as node and as coordinator.
	Metrics *metrics.Registry
	Flight  *flight.Recorder
	Tracer  *tracing.Tracer
	Fleet   *cluster.Fleet
}

// Tier is one node of the coordination tree: a coordinator over its
// children fronted by an agent toward its parent.
type Tier struct {
	cfg  TierConfig
	base cluster.Config // template for rebuilds over changed membership

	// opMu serialises whole-tier operations — steps, cascaded budget
	// changes, child swaps — so a rebuild never interleaves with a grant
	// wave on the coordinator it replaces. Lock order is strictly parent
	// tier → child tier (a cascade holds the parent's opMu while the
	// child takes its own); nothing ever locks upward.
	opMu sync.Mutex

	mu       sync.Mutex
	coord    *cluster.Coordinator
	children []cluster.Transport

	agent *powerapi.Agent
}

// NewTier builds a tier over its child transports and issues the
// initial grant wave (equal split of the starting budget).
func NewTier(cfg TierConfig, children []cluster.Transport) (*Tier, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("hierarchy: tier needs a name")
	}
	if cfg.Level == "" {
		cfg.Level = "tier"
	}
	if cfg.Fallback <= 0 {
		return nil, fmt.Errorf("hierarchy: tier %s needs a positive fallback cap", cfg.Name)
	}
	budget := cfg.Budget
	if cfg.StartAtFallback || budget <= 0 {
		budget = cfg.Fallback
	}
	base := cluster.Config{
		Budget:          budget,
		Interval:        cfg.Interval,
		FloorFraction:   cfg.FloorFraction,
		FloorBudget:     cfg.Fallback,
		RoundBase:       tracing.RoundIDBase(cfg.Name),
		LeaseTTL:        cfg.LeaseTTL,
		NodeTimeout:     cfg.NodeTimeout,
		Retries:         cfg.Retries,
		RetryBackoff:    cfg.RetryBackoff,
		QuarantineAfter: cfg.QuarantineAfter,
		Metrics:         cfg.Metrics,
		Tracer:          cfg.Tracer,
		Fleet:           cfg.Fleet,
	}
	coord, err := cluster.NewOverTransports(children, base)
	if err != nil {
		return nil, fmt.Errorf("hierarchy: tier %s: %w", cfg.Name, err)
	}
	t := &Tier{
		cfg:      cfg,
		base:     base,
		coord:    coord,
		children: append([]cluster.Transport(nil), children...),
	}
	a, err := powerapi.NewAgent(powerapi.AgentConfig{
		Name:     cfg.Name,
		NodeID:   cfg.NodeID,
		Backend:  tierBackend{t},
		Fallback: cfg.Fallback,
		Flight:   cfg.Flight,
		Tracer:   cfg.Tracer,
		Metrics:  cfg.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("hierarchy: tier %s: %w", cfg.Name, err)
	}
	t.agent = a
	return t, nil
}

// Name reports the tier's node name.
func (t *Tier) Name() string { return t.cfg.Name }

// Level reports the tier's level label ("row", "building", ...).
func (t *Tier) Level() string { return t.cfg.Level }

// Agent exposes the tier's upward-facing control-plane agent; mount
// Agent().Handler() to serve the tier as a node.
func (t *Tier) Agent() *powerapi.Agent { return t.agent }

// Coordinator exposes the tier's downward-facing coordinator.
func (t *Tier) Coordinator() *cluster.Coordinator {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.coord
}

// Transport returns an in-process transport for the tier's agent — how
// a parent in the same process adopts this tier as a child without a
// loopback hop. coord names the parent in lease messages.
func (t *Tier) Transport(coord string) *AgentTransport {
	return NewAgentTransport(t.agent, coord)
}

// Step runs one reallocation round over the tier's children.
func (t *Tier) Step(ctx context.Context) error {
	t.opMu.Lock()
	defer t.opMu.Unlock()
	return t.Coordinator().Step(ctx)
}

// SetBudget cascades a budget change to the tier's children; see
// cluster.Coordinator.SetBudget for the shrink handshake.
func (t *Tier) SetBudget(ctx context.Context, b units.Watts) error {
	t.opMu.Lock()
	defer t.opMu.Unlock()
	return t.Coordinator().SetBudget(ctx, b)
}

// SetChildren rebuilds the tier's coordinator over a changed child set
// (registration, drain, re-admission). The acknowledged-grant ledger
// carries over by child name, so surviving children shrink before
// newcomers grow and the rebuild can never transiently over-commit the
// tier's budget.
func (t *Tier) SetChildren(children []cluster.Transport) error {
	t.opMu.Lock()
	defer t.opMu.Unlock()
	old := t.Coordinator()
	cfg := t.base
	cfg.Budget = old.Budget()
	cfg.PriorLedger = old.LeaseLedger()
	nc, err := cluster.NewOverTransports(children, cfg)
	if err != nil {
		return fmt.Errorf("hierarchy: tier %s: %w", t.cfg.Name, err)
	}
	t.mu.Lock()
	t.coord = nc
	t.children = append([]cluster.Transport(nil), children...)
	t.mu.Unlock()
	return nil
}

// Children reports the current child names.
func (t *Tier) Children() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.children))
	for i, c := range t.children {
		out[i] = c.Name()
	}
	return out
}

// Close stops the tier agent's lease-expiry timer.
func (t *Tier) Close() { t.agent.Close() }

// child finds a direct child transport by name, nil if unknown.
func (t *Tier) child(name string) cluster.Transport {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.children {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// tierBackend adapts the tier to the agent's Backend: the subtree
// aggregate is the status, a granted limit is a cascaded budget.
type tierBackend struct{ t *Tier }

func (b tierBackend) FillStatus(st *powerapi.NodeStatus) {
	c := b.t.Coordinator()
	agg := c.Aggregate()
	budget := c.Budget()
	st.Policy = "tier-" + b.t.cfg.Level
	st.LimitWatts = float64(budget)
	st.PowerWatts = float64(agg.Power)
	st.MaxWatts = float64(agg.Max)
	if agg.Max == 0 {
		// No child has reported yet; the budget is the best available
		// stand-in for what the subtree could absorb, and reporting 0
		// would make the parent starve the tier down to its floor.
		st.MaxWatts = float64(budget)
	}
	st.Iterations = int(c.Rounds())
	st.Energy = agg.Energy
	st.Tier = &powerapi.TierStatus{
		Tier:        b.t.cfg.Level,
		Children:    agg.Children,
		Nodes:       agg.Leaves,
		Depth:       agg.Depth,
		Quarantined: agg.Quarantined,
		BudgetWatts: float64(budget),
	}
}

// SetLimit is the recursive conservation hinge: the tier's granted cap
// becomes its coordinator's budget, and a shrink reports success only
// once the children's acknowledged ledger fits under it — so the
// refusing agent keeps the parent's ledger honest on failure.
func (b tierBackend) SetLimit(ctx context.Context, limit units.Watts) error {
	return b.t.SetBudget(ctx, limit)
}

// EnforceFallback clamps the cascaded budget when the tier's own lease
// expires (or it drains). Unlike a granted shrink — which the tier may
// refuse so the parent's ledger stays honest — an expiry cannot be
// refused: the parent already wrote the tier off at its fallback and
// may re-grant the difference. So the clamp is forced: reachable
// children shrink now, unreachable ones keep their stale caps only
// until their own leases lapse, and no future wave plans above the
// fallback. That bounded lapse is the "rows revert within one TTL,
// leaves within two" cascade.
func (b tierBackend) EnforceFallback(ctx context.Context, limit units.Watts) {
	b.t.opMu.Lock()
	defer b.t.opMu.Unlock()
	// The only error ForceBudget can return is a budget below the floor
	// sum, and construction pins the floors to fractions of this same
	// fallback figure — so the clamp cannot fail.
	_ = b.t.Coordinator().ForceBudget(ctx, limit)
}

// ForwardGrant routes a batched grant wave entry to a direct child —
// how one lease_batch POST to the tier fans a wave across its subtree's
// front rank.
func (b tierBackend) ForwardGrant(ctx context.Context, node string, g *powerapi.LeaseGrant) (*powerapi.LeaseAck, error) {
	tr := b.t.child(node)
	if tr == nil {
		return nil, &powerapi.ErrorReply{Code: powerapi.CodeUnknownNode,
			Message: fmt.Sprintf("tier %s has no child %q", b.t.cfg.Name, node)}
	}
	err := tr.Grant(ctx, cluster.Grant{
		Limit:    units.Watts(g.LimitWatts),
		TTL:      grantTTL(g.TTLMS),
		Fallback: units.Watts(g.FallbackWatts),
	})
	if err != nil {
		return nil, err
	}
	return &powerapi.LeaseAck{ID: g.ID, Applied: true, LimitWatts: g.LimitWatts}, nil
}
