package hierarchy

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/flight"
	"repro/internal/tracing"
	"repro/internal/units"
)

// flakyUplink fronts a row agent's handler with switchable faults: fail
// answers 503 (a partition the coordinator sees as an erred report —
// a merge gap), delay stalls every request (a straggler).
type flakyUplink struct {
	inner http.Handler
	fail  atomic.Bool
	delay atomic.Int64 // nanoseconds
}

func (u *flakyUplink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := time.Duration(u.delay.Load()); d > 0 {
		time.Sleep(d)
	}
	if u.fail.Load() {
		http.Error(w, "injected partition", http.StatusServiceUnavailable)
		return
	}
	u.inner.ServeHTTP(w, r)
}

// TestBuildingDeathCascade kills the building — it simply stops
// granting — and verifies the paper's fallback cascade end to end from
// the flight recorder: every row reverts to its fallback cap within one
// lease TTL of its last grant, and every row's leaves fit under that
// fallback within two. The same run exercises powerdump's merge rules
// on the cross-tier trace: a partitioned row shows up as gap rounds, a
// delayed row as the straggler.
func TestBuildingDeathCascade(t *testing.T) {
	const (
		rows    = 3
		perRow  = 3
		nLeaves = rows * perRow
	)
	budget := 900 * watt
	rowFallback := budget * floorFraction / rows         // 150 W
	leafFallback := rowFallback * floorFraction / perRow // 25 W
	ttl := 150 * time.Millisecond

	rec := flight.New(1 << 14)
	rootTracer := tracing.New("building", 0)

	var (
		leaves   []*Leaf
		rowTiers []*Tier
		rowIDs   []int16
		rowKids  = make(map[int16][]int16)
		tracers  []*tracing.Tracer
		uplinks  []cluster.Transport
		flaky    []*flakyUplink
	)
	defer func() {
		for _, l := range leaves {
			l.Close()
		}
		for _, r := range rowTiers {
			r.Close()
		}
	}()

	nodeID := int16(0)
	nextID := func() int16 { nodeID++; return nodeID }
	for r := 0; r < rows; r++ {
		rowName := fmt.Sprintf("row%d", r)
		ts := make([]cluster.Transport, 0, perRow)
		var kids []int16
		for j := 0; j < perRow; j++ {
			id := nextID()
			leaf, err := NewLeaf(LeafConfig{
				Name:     fmt.Sprintf("n%d", r*perRow+j),
				NodeID:   id,
				Max:      200,
				Fallback: leafFallback,
				Demand:   110,
				Flight:   rec,
			})
			if err != nil {
				t.Fatal(err)
			}
			leaves = append(leaves, leaf)
			kids = append(kids, id)
			ts = append(ts, leaf.Transport(rowName))
		}
		id := nextID()
		tr := tracing.New(rowName, 0)
		tracers = append(tracers, tr)
		row, err := NewTier(TierConfig{
			Name: rowName, Level: "row", NodeID: id,
			StartAtFallback: true, Fallback: rowFallback,
			LeaseTTL: ttl, Retries: -1, NodeTimeout: time.Second,
			Flight: rec, Tracer: tr,
		}, ts)
		if err != nil {
			t.Fatal(err)
		}
		rowTiers = append(rowTiers, row)
		rowIDs = append(rowIDs, id)
		rowKids[id] = kids

		fu := &flakyUplink{inner: row.Agent().Handler()}
		flaky = append(flaky, fu)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: fu}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		uplinks = append(uplinks, cluster.NewHTTPNode(rowName, ln.Addr().String(), "building").DeltaStatus())
	}

	root, err := NewTier(TierConfig{
		Name: "building", Level: "building", NodeID: nextID(),
		Budget: budget, Fallback: budget,
		LeaseTTL: ttl, Retries: -1, NodeTimeout: time.Second,
		Flight: rec, Tracer: rootTracer,
	}, uplinks)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()

	// Healthy rounds, with a partition window on row1 (gap rounds in the
	// merged timeline) and a latency window on row2 (the straggler).
	ctx := context.Background()
	const healthyRounds = 12
	for round := 0; round < healthyRounds; round++ {
		flaky[1].fail.Store(round == 4 || round == 5)
		if round >= 8 && round < 11 {
			flaky[2].delay.Store(int64(30 * time.Millisecond))
		} else {
			flaky[2].delay.Store(0)
		}
		for _, row := range rowTiers {
			if err := row.Step(ctx); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		if err := root.Step(ctx); err != nil {
			t.Fatalf("round %d root: %v", round, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The building dies: no more grants. Rows keep their own loops
	// running — the cascade is driven purely by lease expiry.
	deadline := time.Now().Add(3 * ttl)
	for time.Now().Before(deadline) {
		for _, row := range rowTiers {
			if err := row.Step(ctx); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// End state: every row clamped to its fallback, leaves fit under it.
	for r, row := range rowTiers {
		if b := row.Coordinator().Budget(); float64(b) > float64(rowFallback)+slack {
			t.Errorf("row %d budget %v after building death, want fallback %v", r, b, rowFallback)
		}
		var sum units.Watts
		for j := 0; j < perRow; j++ {
			sum += leaves[r*perRow+j].Limit()
		}
		if float64(sum) > float64(rowFallback)+slack {
			t.Errorf("row %d leaves hold %v > row fallback %v", r, sum, rowFallback)
		}
	}

	// Replay the cascade timing from the flight recorder.
	events := rec.Dump("cascade").Events
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	type leaseEnd struct {
		deadline time.Duration // last grant's expiry
		fellBack time.Duration // when the fallback was enforced
	}
	rowLease := make(map[int16]*leaseEnd, rows)
	for _, id := range rowIDs {
		rowLease[id] = &leaseEnd{}
	}
	caps := make(map[int16]float64)
	for _, id := range rowIDs {
		for _, kid := range rowKids[id] {
			caps[kid] = float64(leafFallback) * 1e6
		}
	}
	leafBound := float64(rowFallback) * 1e6 * 1.000001
	for _, e := range events {
		if e.Kind != flight.KindLease {
			continue
		}
		if le, ok := rowLease[e.Core]; ok {
			switch e.Arg {
			case flight.LeaseGrant, flight.LeaseRenew:
				le.deadline = e.Wall + time.Duration(e.Aux)
			case flight.LeaseFallback:
				le.fellBack = e.Wall
			}
			continue
		}
		switch e.Arg {
		case flight.LeaseGrant, flight.LeaseRenew, flight.LeaseFallback:
			if _, ok := caps[e.Core]; ok {
				caps[e.Core] = float64(e.Value)
			}
		}
		// Once a row's lease has been expired for a full leaf TTL (plus
		// timer slack), its leaves must never again sum past the row's
		// fallback — the "nodes within two TTLs" half of the cascade.
		for _, id := range rowIDs {
			le := rowLease[id]
			if le.deadline == 0 || e.Wall <= le.deadline+ttl+timerSlack {
				continue
			}
			var sum float64
			for _, kid := range rowKids[id] {
				sum += caps[kid]
			}
			if sum > leafBound {
				t.Fatalf("seq %d: row %d leaves hold %.1f W > fallback %.1f W, %v past the row's lease deadline",
					e.Seq, id, sum/1e6, float64(rowFallback), e.Wall-le.deadline)
			}
		}
	}
	// "Rows within one TTL": the fallback lands within timer slack of
	// the lease deadline — the deadline IS last grant + one TTL.
	for r, id := range rowIDs {
		le := rowLease[id]
		if le.deadline == 0 {
			t.Fatalf("row %d never received a lease", r)
		}
		if le.fellBack == 0 {
			t.Fatalf("row %d never fell back after the building died", r)
		}
		if le.fellBack > le.deadline+timerSlack {
			t.Errorf("row %d fell back %v after its lease deadline, want within %v",
				r, le.fellBack-le.deadline, timerSlack)
		}
	}

	// The cross-tier merged view shows the injected partition as gap
	// rounds and the delayed row as the straggler.
	tl := tracing.Merge(rootTracer.Log(), []tracing.Log{
		tracers[0].Log(), tracers[1].Log(), tracers[2].Log(),
	})
	if len(tl.Rounds) != healthyRounds {
		t.Fatalf("merged timeline has %d rounds, want %d", len(tl.Rounds), healthyRounds)
	}
	if tl.GapRounds < 1 {
		t.Error("no gap rounds in the merged timeline despite the partition window")
	}
	foundGap := false
	for _, mr := range tl.Rounds {
		for _, g := range mr.Gaps {
			if g == "row1" {
				foundGap = true
			}
		}
	}
	if !foundGap {
		t.Error("partitioned row1 never appears in a round's gap list")
	}
	straggled := false
	for _, st := range tl.Stragglers {
		if st.Node == "row2" && st.Worst >= 30*time.Millisecond {
			straggled = true
		}
	}
	if !straggled {
		t.Errorf("delayed row2 not flagged as straggler; stats: %+v", tl.Stragglers)
	}
}
