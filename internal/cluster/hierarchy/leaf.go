package hierarchy

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/powerapi"
	"repro/internal/tracing"
	"repro/internal/units"
)

// LeafConfig parameterises one simulated leaf node.
type LeafConfig struct {
	// Name identifies the leaf to its row coordinator.
	Name string

	// NodeID stamps the leaf's flight events so a tree-wide recorder can
	// tell nodes apart; use distinct positive IDs (0 means unset).
	NodeID int16

	// Max is the highest cap the leaf can usefully absorb — the chip's
	// RAPL maximum in a real node.
	Max units.Watts

	// Fallback is the safe cap the leaf reverts to on lease expiry; it is
	// also the limit enforced before any coordinator speaks to the leaf.
	Fallback units.Watts

	// Demand is the power the leaf tries to draw; measured power is
	// min(Demand, limit). Adjustable at runtime via SetDemand.
	Demand units.Watts

	// Flight/Tracer/Metrics instrument the leaf's control-plane agent
	// exactly like a real node's.
	Flight  *flight.Recorder
	Tracer  *tracing.Tracer
	Metrics *metrics.Registry
}

// Leaf is a simulated leaf node: a full powerapi agent (lease state
// machine, TTL expiry, flight events) over a trivial settable backend
// instead of a power-delivery daemon. Hierarchy tests and benchmarks use
// thousands of them in-process, so the conservation machinery under test
// — leases, fallbacks, grant phasing — is exactly the production code
// path, with only the physics stubbed out.
type Leaf struct {
	be    *leafBackend
	agent *powerapi.Agent
}

// NewLeaf builds a leaf enforcing its fallback cap.
func NewLeaf(cfg LeafConfig) (*Leaf, error) {
	if cfg.Max <= 0 {
		return nil, fmt.Errorf("hierarchy: leaf %s needs a positive max, got %v", cfg.Name, cfg.Max)
	}
	if cfg.Fallback <= 0 || cfg.Fallback > cfg.Max {
		return nil, fmt.Errorf("hierarchy: leaf %s fallback %v outside (0, %v]", cfg.Name, cfg.Fallback, cfg.Max)
	}
	if cfg.Demand < 0 {
		return nil, fmt.Errorf("hierarchy: leaf %s demand %v negative", cfg.Name, cfg.Demand)
	}
	be := &leafBackend{limit: cfg.Fallback, demand: cfg.Demand, max: cfg.Max}
	a, err := powerapi.NewAgent(powerapi.AgentConfig{
		Name:     cfg.Name,
		NodeID:   cfg.NodeID,
		Backend:  be,
		Fallback: cfg.Fallback,
		Flight:   cfg.Flight,
		Tracer:   cfg.Tracer,
		Metrics:  cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &Leaf{be: be, agent: a}, nil
}

// Agent exposes the leaf's control-plane agent (for HTTP mounting or
// direct inspection).
func (l *Leaf) Agent() *powerapi.Agent { return l.agent }

// Name reports the leaf's node name.
func (l *Leaf) Name() string { return l.agent.Name() }

// SetDemand changes the power the leaf tries to draw.
func (l *Leaf) SetDemand(w units.Watts) {
	l.be.mu.Lock()
	l.be.demand = w
	l.be.mu.Unlock()
}

// Limit reports the cap the leaf currently enforces.
func (l *Leaf) Limit() units.Watts {
	l.be.mu.Lock()
	defer l.be.mu.Unlock()
	return l.be.limit
}

// Power reports the leaf's measured power: demand clipped to the limit.
func (l *Leaf) Power() units.Watts {
	l.be.mu.Lock()
	defer l.be.mu.Unlock()
	return l.be.power()
}

// Transport returns an in-process coordinator transport for the leaf,
// naming coord as the granting coordinator in lease messages.
func (l *Leaf) Transport(coord string) *AgentTransport {
	return NewAgentTransport(l.agent, coord)
}

// Close stops the leaf's lease-expiry timer.
func (l *Leaf) Close() { l.agent.Close() }

// leafBackend is the settable stand-in for a leaf daemon.
type leafBackend struct {
	mu     sync.Mutex
	limit  units.Watts
	demand units.Watts
	max    units.Watts
	iters  int
}

// power is demand clipped to the enforced cap. Caller holds mu.
func (b *leafBackend) power() units.Watts {
	if b.demand < b.limit {
		return b.demand
	}
	return b.limit
}

func (b *leafBackend) FillStatus(st *powerapi.NodeStatus) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st.Policy = "sim-leaf"
	st.LimitWatts = float64(b.limit)
	st.PowerWatts = float64(b.power())
	st.MaxWatts = float64(b.max)
	st.Iterations = b.iters
}

func (b *leafBackend) SetLimit(_ context.Context, limit units.Watts) error {
	if limit <= 0 {
		return fmt.Errorf("hierarchy: leaf cap %v not positive", limit)
	}
	b.mu.Lock()
	b.limit = limit
	b.iters++
	b.mu.Unlock()
	return nil
}

// AgentTransport drives a powerapi agent in-process: the coordinator's
// Transport without a network between. Reports come from the agent's
// own Status (so lease state, tier rollups, and energy summaries ride
// along exactly as they would over HTTP); grants run the agent's full
// lease state machine with monotonic IDs. It is how a SimTree wires
// leaves to rows without paying a loopback round-trip per leaf.
type AgentTransport struct {
	a       *powerapi.Agent
	coord   string
	leaseID atomic.Uint64
}

// NewAgentTransport wraps an agent; coord names the granting
// coordinator in lease messages (it may be empty).
func NewAgentTransport(a *powerapi.Agent, coord string) *AgentTransport {
	return &AgentTransport{a: a, coord: coord}
}

func (t *AgentTransport) Name() string { return t.a.Name() }

func (t *AgentTransport) Report(ctx context.Context) (cluster.Report, error) {
	st := t.a.Status()
	return cluster.Report{
		Power:  units.Watts(st.PowerWatts),
		Limit:  units.Watts(st.LimitWatts),
		Max:    units.Watts(st.MaxWatts),
		Status: st,
	}, nil
}

func (t *AgentTransport) Grant(ctx context.Context, g cluster.Grant) error {
	// Sub-millisecond TTLs truncate to an invalid zero-ms grant; round up
	// so in-process simulations can run on aggressive clocks.
	ttl := g.TTL.Milliseconds()
	if ttl == 0 && g.TTL > 0 {
		ttl = 1
	}
	_, err := t.a.GrantCtx(ctx, &powerapi.LeaseGrant{
		ID:            t.leaseID.Add(1),
		Coordinator:   t.coord,
		LimitWatts:    float64(g.Limit),
		TTLMS:         ttl,
		FallbackWatts: float64(g.Fallback),
	})
	return err
}

var _ cluster.Transport = (*AgentTransport)(nil)

// grantTTL converts a wire TTL back to a duration for forwarding.
func grantTTL(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }
