package hierarchy

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/flight"
	"repro/internal/tracing"
	"repro/internal/units"
)

// SimTreeConfig parameterises a simulated room→row→building tree.
type SimTreeConfig struct {
	// Name is the root coordinator's name (default "building").
	Name string

	// Leaves is the total leaf count, spread as evenly as possible over
	// Rows mid-tier coordinators.
	Leaves int
	Rows   int

	// Budget is the building-level power budget.
	Budget units.Watts

	// LeafMax is each leaf's highest useful cap (default 2× the equal
	// leaf share); LeafDemand its initial draw (default 0.9× the share).
	LeafMax    units.Watts
	LeafDemand units.Watts

	// Interval and LeaseTTL pass to every tier (cluster.Config defaults
	// apply when zero). NodeTimeout and Retries likewise; fault tests
	// set Retries to -1 for fail-fast rounds.
	Interval    time.Duration
	LeaseTTL    time.Duration
	NodeTimeout time.Duration
	Retries     int

	// HTTPUplinks serves each row's agent on a loopback listener and
	// connects the building to it over the real wire protocol with
	// delta-encoded status — the deployment shape, minus the datacenter.
	// Off, rows attach in-process, which is what a single benchmark box
	// wants for thousand-leaf trees.
	HTTPUplinks bool

	// Trace gives every coordinator a tracer (shared with its agent)
	// so the tree produces logs powerdump's merged view can join.
	Trace bool

	// Flight, when set, is shared by every agent in the tree; NodeIDs
	// are assigned 1..N over leaves, then rows, then the root.
	Flight *flight.Recorder
}

// SimTree is an in-process 3-tier coordination tree: simulated leaves
// under row tiers under one building-level root. It exists for tests
// and benchmarks; cmd/powercoord assembles the same shape from real
// processes.
type SimTree struct {
	Root   *Tier
	Rows   []*Tier
	Leaves []*Leaf

	// RowLeaves[i] are the leaves under Rows[i].
	RowLeaves [][]*Leaf

	servers []*http.Server
}

// floorFraction is the guaranteed-share fraction every simulated tier
// uses, mirroring cluster.Config's default.
const floorFraction = 0.5

// NewSimTree builds the tree, starts any loopback servers, and issues
// the initial grant waves tier by tier.
func NewSimTree(cfg SimTreeConfig) (*SimTree, error) {
	if cfg.Name == "" {
		cfg.Name = "building"
	}
	if cfg.Rows <= 0 || cfg.Leaves < cfg.Rows {
		return nil, fmt.Errorf("hierarchy: %d leaves over %d rows", cfg.Leaves, cfg.Rows)
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("hierarchy: budget %v not positive", cfg.Budget)
	}
	equalLeaf := cfg.Budget / units.Watts(cfg.Leaves)
	if cfg.LeafMax <= 0 {
		cfg.LeafMax = 2 * equalLeaf
	}
	if cfg.LeafDemand <= 0 {
		cfg.LeafDemand = equalLeaf * 0.9
	}

	tracer := func(origin string) *tracing.Tracer {
		if !cfg.Trace {
			return nil
		}
		return tracing.New(origin, 0)
	}

	// The fallback chain is what makes partition math close: each row's
	// fallback cap is exactly the floor the building promises it, and
	// each leaf's is the floor its row promises — so a tier held to its
	// fallback still covers every cap it may have promised below.
	rowFallback := cfg.Budget * floorFraction / units.Watts(cfg.Rows)

	t := &SimTree{}
	ok := false
	defer func() {
		if !ok {
			t.Close()
		}
	}()

	nodeID := int16(0)
	nextID := func() int16 { nodeID++; return nodeID }

	per := cfg.Leaves / cfg.Rows
	extra := cfg.Leaves % cfg.Rows
	leafIdx := 0
	rowTransports := make([][]cluster.Transport, cfg.Rows)
	for r := 0; r < cfg.Rows; r++ {
		k := per
		if r < extra {
			k++
		}
		leafFallback := rowFallback * floorFraction / units.Watts(k)
		leaves := make([]*Leaf, 0, k)
		ts := make([]cluster.Transport, 0, k)
		rowName := fmt.Sprintf("row%d", r)
		for j := 0; j < k; j++ {
			leaf, err := NewLeaf(LeafConfig{
				Name:     fmt.Sprintf("n%d", leafIdx),
				NodeID:   nextID(),
				Max:      cfg.LeafMax,
				Fallback: leafFallback,
				Demand:   cfg.LeafDemand,
				Flight:   cfg.Flight,
			})
			if err != nil {
				return nil, err
			}
			leafIdx++
			leaves = append(leaves, leaf)
			ts = append(ts, leaf.Transport(rowName))
		}
		t.Leaves = append(t.Leaves, leaves...)
		t.RowLeaves = append(t.RowLeaves, leaves)
		rowTransports[r] = ts
	}

	for r := 0; r < cfg.Rows; r++ {
		row, err := NewTier(TierConfig{
			Name:            fmt.Sprintf("row%d", r),
			Level:           "row",
			NodeID:          nextID(),
			StartAtFallback: true,
			Fallback:        rowFallback,
			Interval:        cfg.Interval,
			LeaseTTL:        cfg.LeaseTTL,
			NodeTimeout:     cfg.NodeTimeout,
			Retries:         cfg.Retries,
			Flight:          cfg.Flight,
			Tracer:          tracer(fmt.Sprintf("row%d", r)),
		}, rowTransports[r])
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}

	uplinks := make([]cluster.Transport, cfg.Rows)
	for r, row := range t.Rows {
		if !cfg.HTTPUplinks {
			uplinks[r] = row.Transport(cfg.Name)
			continue
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("hierarchy: row uplink: %w", err)
		}
		srv := &http.Server{Handler: row.Agent().Handler()}
		go srv.Serve(ln)
		t.servers = append(t.servers, srv)
		uplinks[r] = cluster.NewHTTPNode(row.Name(), ln.Addr().String(), cfg.Name).DeltaStatus()
	}

	root, err := NewTier(TierConfig{
		Name:        cfg.Name,
		Level:       "building",
		NodeID:      nextID(),
		Budget:      cfg.Budget,
		Fallback:    cfg.Budget,
		Interval:    cfg.Interval,
		LeaseTTL:    cfg.LeaseTTL,
		NodeTimeout: cfg.NodeTimeout,
		Retries:     cfg.Retries,
		Flight:      cfg.Flight,
		Tracer:      tracer(cfg.Name),
	}, uplinks)
	if err != nil {
		return nil, err
	}
	t.Root = root
	ok = true
	return t, nil
}

// StepRows runs one reallocation round on every row concurrently —
// rows are independent coordinators (separate processes in deployment),
// so a tree round's row phase costs one row, not the sum of all of
// them. Returns the first error (lenient coordinators rarely return
// any).
func (t *SimTree) StepRows(ctx context.Context) error {
	errs := make([]error, len(t.Rows))
	var wg sync.WaitGroup
	for i, row := range t.Rows {
		wg.Add(1)
		go func(i int, row *Tier) {
			defer wg.Done()
			errs[i] = row.Step(ctx)
		}(i, row)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// StepRoot runs one building-level round over the row uplinks.
func (t *SimTree) StepRoot(ctx context.Context) error {
	return t.Root.Step(ctx)
}

// Step coordinates one full tree round: rows poll their leaves, then
// the building polls the rows' fresh aggregates and re-cascades budget.
func (t *SimTree) Step(ctx context.Context) error {
	if err := t.StepRows(ctx); err != nil {
		return err
	}
	return t.StepRoot(ctx)
}

// Logs collects the tracing logs of every coordinator in the tree,
// root first — powerdump's merged view input.
func (t *SimTree) Logs() []tracing.Log {
	var out []tracing.Log
	if t.Root != nil {
		if tr := t.Root.cfg.Tracer; tr != nil {
			out = append(out, tr.Log())
		}
	}
	for _, row := range t.Rows {
		if tr := row.cfg.Tracer; tr != nil {
			out = append(out, tr.Log())
		}
	}
	return out
}

// TotalLeafCaps sums the caps the leaves currently enforce — the
// figure tier conservation bounds by the building budget.
func (t *SimTree) TotalLeafCaps() units.Watts {
	var sum units.Watts
	for _, l := range t.Leaves {
		sum += l.Limit()
	}
	return sum
}

// Close shuts loopback servers and stops every lease-expiry timer.
func (t *SimTree) Close() {
	for _, srv := range t.servers {
		srv.Close()
	}
	if t.Root != nil {
		t.Root.Close()
	}
	for _, row := range t.Rows {
		row.Close()
	}
	for _, l := range t.Leaves {
		l.Close()
	}
}
