package hierarchy

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

const watt = units.Watts(1)

// slack absorbs float rounding in watt-sum comparisons.
const slack = 1e-6

func newTestTree(t *testing.T, cfg SimTreeConfig) *SimTree {
	t.Helper()
	tree, err := NewSimTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	return tree
}

func TestTreeCascadesBudgetDown(t *testing.T) {
	tree := newTestTree(t, SimTreeConfig{
		Leaves:   16,
		Rows:     4,
		Budget:   1600 * watt,
		Interval: 10 * time.Millisecond,
		LeaseTTL: time.Minute, // no expiry during the test
	})
	ctx := context.Background()

	// Construction alone grants each row an equal split of the building
	// budget, which each row's coordinator re-cascades over its leaves.
	for i, row := range tree.Rows {
		b := row.Coordinator().Budget()
		if math.Abs(float64(b-400*watt)) > slack {
			t.Errorf("row %d budget %v after initial wave, want 400", i, b)
		}
	}

	for round := 0; round < 3; round++ {
		if err := tree.Step(ctx); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	// Conservation: the caps the leaves actually enforce stay within the
	// building budget.
	if caps := tree.TotalLeafCaps(); float64(caps) > float64(tree.Root.Coordinator().Budget())+slack {
		t.Errorf("leaf caps %v exceed building budget %v", caps, tree.Root.Coordinator().Budget())
	}

	// Demand flows: every leaf demanded 90 W and should hold close to
	// its 100 W equal share after the waterfill rounds.
	for i, l := range tree.Leaves {
		if l.Limit() < 80*watt {
			t.Errorf("leaf %d limit %v, want ≥ 80 W of its 100 W share", i, l.Limit())
		}
	}

	// The root's aggregate sees the whole subtree.
	agg := tree.Root.Coordinator().Aggregate()
	if agg.Leaves != 16 {
		t.Errorf("root aggregate sees %d leaves, want 16", agg.Leaves)
	}
	if agg.Depth != 2 {
		t.Errorf("root aggregate depth %d, want 2", agg.Depth)
	}
	if agg.Children != 4 {
		t.Errorf("root aggregate children %d, want 4", agg.Children)
	}
}

func TestTreeOverHTTPUplinks(t *testing.T) {
	tree := newTestTree(t, SimTreeConfig{
		Leaves:      8,
		Rows:        2,
		Budget:      800 * watt,
		Interval:    10 * time.Millisecond,
		LeaseTTL:    time.Minute,
		HTTPUplinks: true,
		Trace:       true,
	})
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		if err := tree.Step(ctx); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if caps := tree.TotalLeafCaps(); float64(caps) > float64(800)+slack {
		t.Errorf("leaf caps %v exceed building budget 800", caps)
	}
	agg := tree.Root.Coordinator().Aggregate()
	if agg.Leaves != 8 || agg.Depth != 2 {
		t.Errorf("root aggregate %+v, want 8 leaves at depth 2", agg)
	}
	logs := tree.Logs()
	if len(logs) != 3 {
		t.Fatalf("%d trace logs, want 3 (building + 2 rows)", len(logs))
	}
	// Round-ID namespaces must be disjoint: every row round carries its
	// coordinator's base in the top 32 bits.
	for _, log := range logs {
		for _, r := range log.Rounds {
			if r.ID>>32 == 0 {
				t.Fatalf("round %d in %s log lacks a namespace", r.ID, log.Origin)
			}
		}
	}
}

// A shrink at the building must not report success until the leaves'
// acknowledged caps fit under the new budget — and must hold the caps
// the tree enforces under the shrunk figure afterwards.
func TestTreeShrinkCascades(t *testing.T) {
	tree := newTestTree(t, SimTreeConfig{
		Leaves:   8,
		Rows:     2,
		Budget:   800 * watt,
		Interval: 10 * time.Millisecond,
		LeaseTTL: time.Minute,
	})
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		if err := tree.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Root.SetBudget(ctx, 500*watt); err != nil {
		t.Fatalf("shrink to 500 W: %v", err)
	}
	if caps := tree.TotalLeafCaps(); float64(caps) > 500+slack {
		t.Errorf("leaf caps %v exceed shrunk budget 500", caps)
	}
	// Below the floor sum the shrink must refuse outright.
	if err := tree.Root.SetBudget(ctx, 100*watt); err == nil {
		t.Error("shrink below the floor sum accepted")
	}
}
