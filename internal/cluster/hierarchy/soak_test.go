package hierarchy

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/units"
)

// TestMidTierSoak hammers one mid-tier coordinator with everything that
// can happen to it at once: a driver stepping grant waves as fast as
// they complete, a parent oscillating its budget up and down, and an
// operator churning children through drain → removal → re-admission —
// for ≥10k rounds. Run under -race (CI does) this is the hierarchy's
// concurrency soak; the invariant checked at every budget commit and at
// the end is the same tier conservation the property test replays:
// attached children's enforced caps fit the tier's budget, detached
// ones sit at their fallback.
func TestMidTierSoak(t *testing.T) {
	const (
		nLeaves = 8
		rounds  = 10_000
	)
	budget := units.Watts(800)
	rowFallback := budget * floorFraction             // what the row reverts to
	fallback := rowFallback * floorFraction / nLeaves // 25 W per leaf

	leaves := make([]*Leaf, nLeaves)
	ts := make([]cluster.Transport, nLeaves)
	for i := range leaves {
		leaf, err := NewLeaf(LeafConfig{
			Name:     fmt.Sprintf("n%d", i),
			NodeID:   int16(i + 1),
			Max:      200,
			Fallback: fallback,
			Demand:   90,
		})
		if err != nil {
			t.Fatal(err)
		}
		leaves[i] = leaf
		ts[i] = leaf.Transport("row")
	}
	defer func() {
		for _, l := range leaves {
			l.Close()
		}
	}()

	row, err := NewTier(TierConfig{
		Name:     "row",
		Level:    "row",
		NodeID:   nLeaves + 1,
		Budget:   budget,
		Fallback: rowFallback,
		LeaseTTL: time.Minute,
		Retries:  -1,
	}, ts)
	if err != nil {
		t.Fatal(err)
	}
	defer row.Close()

	ctx := context.Background()
	var done atomic.Bool
	var wg sync.WaitGroup

	// Parent-side budget oscillation: grow/shrink between 60% and 100%.
	// A refused shrink is legitimate under churn — a draining child
	// cannot acknowledge, so the old budget stays committed — but
	// whatever IS committed when SetBudget returns must already bound
	// the enforced caps. One leaf may be mid-churn detached; its
	// fallback floor rides outside the tier's budget until re-admission
	// (de-admission hands that floor back to the building), hence the
	// one-fallback allowance.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for !done.Load() {
			b := budget * units.Watts(0.6+0.4*rng.Float64())
			err := row.SetBudget(ctx, b)
			committed := row.Coordinator().Budget()
			if err == nil && committed != b {
				t.Errorf("soak: SetBudget(%v) reported success but committed %v", b, committed)
				return
			}
			var sum units.Watts
			for _, l := range leaves {
				sum += l.Limit()
			}
			if float64(sum) > float64(committed+fallback)+slack {
				t.Errorf("soak: leaf caps %v exceed committed budget %v (+1 detached fallback %v)", sum, committed, fallback)
				return
			}
		}
	}()

	// Child churn: drain a random leaf, rebuild the tier without it,
	// then re-admit it. The prior-ledger carry-over in SetChildren is
	// what keeps the rebuilds from transiently over-committing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for !done.Load() {
			i := rng.Intn(nLeaves)
			if _, err := leaves[i].Agent().SetDrain(true); err != nil {
				t.Errorf("soak drain: %v", err)
				return
			}
			without := make([]cluster.Transport, 0, nLeaves-1)
			for j, tr := range ts {
				if j != i {
					without = append(without, tr)
				}
			}
			if err := row.SetChildren(without); err != nil {
				t.Errorf("soak SetChildren(-1): %v", err)
				return
			}
			// While detached, the drained leaf must idle at its fallback.
			if got := leaves[i].Limit(); float64(got) > float64(fallback)+slack {
				t.Errorf("soak: drained leaf %d holds %v > fallback %v", i, got, fallback)
				return
			}
			if _, err := leaves[i].Agent().SetDrain(false); err != nil {
				t.Errorf("soak undrain: %v", err)
				return
			}
			if err := row.SetChildren(ts); err != nil {
				t.Errorf("soak SetChildren(+1): %v", err)
				return
			}
		}
	}()

	// The driver: grant waves back to back. Rebuilds reset the inner
	// coordinator's round counter, so count driver iterations instead.
	for r := 0; r < rounds; r++ {
		if err := row.Step(ctx); err != nil {
			t.Fatalf("soak round %d: %v", r, err)
		}
	}
	done.Store(true)
	wg.Wait()

	if t.Failed() {
		return
	}
	// Settle: every leaf attached, no drain, one last wave — then the
	// end state must show full conservation and a working waterfill.
	if err := row.SetChildren(ts); err != nil {
		t.Fatal(err)
	}
	if err := row.SetBudget(ctx, budget); err != nil {
		t.Fatal(err)
	}
	if err := row.Step(ctx); err != nil {
		t.Fatal(err)
	}
	var sum units.Watts
	for _, l := range leaves {
		sum += l.Limit()
	}
	if float64(sum) > float64(budget)+slack {
		t.Errorf("after soak: leaf caps %v exceed budget %v", sum, budget)
	}
	for i, l := range leaves {
		if l.Limit() < fallback-slack {
			t.Errorf("after soak: leaf %d cap %v below its floor %v", i, l.Limit(), fallback)
		}
	}
}
