package hierarchy

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/units"
)

// roundTick is one driver round on the fault schedule's virtual clock.
const roundTick = time.Millisecond

// faultTransport wraps a child transport with schedule-driven fault
// injection at the control-plane level, reusing the fault package's
// schedule/window machinery with the transport's global index standing
// in for the CPU. The classes translate as:
//
//	eio     → requests dropped with probability Prob
//	stuck   → reports answered from a stale cache (lying telemetry)
//	torn    → grant waves dropped while reports still flow
//	latency → Delay added to every request
//	thermal → the reported absorbable max collapses to half
//	rapl    → the reported power draw collapses to half
//	offline → full partition: every request fails
//
// Requests are dropped before reaching the node — partition semantics —
// so a dropped grant is never applied-but-unacknowledged; modelling
// lost acks would need grant-side idempotency tokens the protocol does
// not promise.
type faultTransport struct {
	inner cluster.Transport
	idx   int
	sched fault.Schedule
	clock func() time.Duration

	mu   sync.Mutex
	rng  *rand.Rand
	last cluster.Report
	have bool
}

func (f *faultTransport) Name() string { return f.inner.Name() }

func (f *faultTransport) active(class fault.Class) (fault.Entry, bool) {
	now := f.clock()
	for _, e := range f.sched {
		if e.Class == class && e.Active(now) && e.Matches(f.idx, 0) {
			return e, true
		}
	}
	return fault.Entry{}, false
}

func (f *faultTransport) roll(p float64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < p
}

func (f *faultTransport) delay(ctx context.Context) error {
	if e, ok := f.active(fault.ClassLatency); ok && e.Delay > 0 {
		select {
		case <-time.After(e.Delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func (f *faultTransport) dropped() error {
	if _, ok := f.active(fault.ClassOffline); ok {
		return fmt.Errorf("%s offline: %w", f.inner.Name(), fault.ErrInjected)
	}
	if e, ok := f.active(fault.ClassEIO); ok && f.roll(e.Prob) {
		return fmt.Errorf("%s flaky: %w", f.inner.Name(), fault.ErrInjected)
	}
	return nil
}

func (f *faultTransport) Report(ctx context.Context) (cluster.Report, error) {
	if err := f.delay(ctx); err != nil {
		return cluster.Report{}, err
	}
	if err := f.dropped(); err != nil {
		return cluster.Report{}, err
	}
	if _, ok := f.active(fault.ClassStuck); ok {
		f.mu.Lock()
		last, have := f.last, f.have
		f.mu.Unlock()
		if have {
			return last, nil
		}
	}
	r, err := f.inner.Report(ctx)
	if err != nil {
		return r, err
	}
	if _, ok := f.active(fault.ClassThermal); ok {
		r.Max /= 2
	}
	if _, ok := f.active(fault.ClassRAPL); ok {
		r.Power /= 2
	}
	f.mu.Lock()
	f.last, f.have = r, true
	f.mu.Unlock()
	return r, nil
}

func (f *faultTransport) Grant(ctx context.Context, g cluster.Grant) error {
	if err := f.delay(ctx); err != nil {
		return err
	}
	if err := f.dropped(); err != nil {
		return err
	}
	if _, ok := f.active(fault.ClassTorn); ok {
		return fmt.Errorf("%s torn wave: %w", f.inner.Name(), fault.ErrInjected)
	}
	return f.inner.Grant(ctx, g)
}

// faultTree is a randomized 2- or 3-tier tree whose every transport is
// fault-wrapped, with the bookkeeping the conservation replay needs.
type faultTree struct {
	root   *Tier
	rows   []*Tier
	leaves []*Leaf

	budget units.Watts
	// bounds holds each agent's starting enforced cap (its fallback);
	// the root's entry is the building budget, which nothing leases.
	bounds map[int16]units.Watts
	// childOf maps each coordinator's node ID to its children's IDs.
	childOf map[int16][]int16
	rootID  int16

	// uplinkIdx maps row position to the global transport index of its
	// uplink, for aiming kill windows.
	uplinkIdx []int
}

func (ft *faultTree) close() {
	if ft.root != nil {
		ft.root.Close()
	}
	for _, r := range ft.rows {
		r.Close()
	}
	for _, l := range ft.leaves {
		l.Close()
	}
}

// buildFaultTree assembles the tree: 3-tier (building→rows→leaves) or
// 2-tier (building→leaves) with every transport wrapped in the same
// global fault schedule.
func buildFaultTree(t *testing.T, rng *rand.Rand, rec *flight.Recorder, clock func() time.Duration, sched fault.Schedule, threeTier bool, ttl time.Duration) *faultTree {
	t.Helper()
	rows := 2 + rng.Intn(3)
	perRow := 2 + rng.Intn(4)
	nLeaves := rows * perRow
	if !threeTier {
		nLeaves = 3 + rng.Intn(6)
	}
	budget := units.Watts(100 * nLeaves)

	ft := &faultTree{
		budget:  budget,
		bounds:  make(map[int16]units.Watts),
		childOf: make(map[int16][]int16),
	}
	nodeID := int16(0)
	nextID := func() int16 { nodeID++; return nodeID }
	txIdx := 0
	wrap := func(tr cluster.Transport) cluster.Transport {
		w := &faultTransport{inner: tr, idx: txIdx, sched: sched, clock: clock,
			rng: rand.New(rand.NewSource(rng.Int63()))}
		txIdx++
		return w
	}
	newLeaf := func(name string, fallback units.Watts) (*Leaf, int16) {
		id := nextID()
		leaf, err := NewLeaf(LeafConfig{
			Name: name, NodeID: id, Max: 200, Fallback: fallback,
			Demand: units.Watts(40 + rng.Float64()*120), Flight: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		ft.leaves = append(ft.leaves, leaf)
		ft.bounds[id] = fallback
		return leaf, id
	}

	tcfg := func(name, level string, id int16, fb units.Watts, atFB bool) TierConfig {
		return TierConfig{
			Name: name, Level: level, NodeID: id,
			Budget: budget, StartAtFallback: atFB, Fallback: fb,
			Interval: 5 * time.Millisecond, LeaseTTL: ttl,
			Retries: -1, NodeTimeout: time.Second, Flight: rec,
		}
	}

	if !threeTier {
		leafFallback := budget * floorFraction / units.Watts(nLeaves)
		ts := make([]cluster.Transport, 0, nLeaves)
		var kids []int16
		for i := 0; i < nLeaves; i++ {
			leaf, id := newLeaf(fmt.Sprintf("n%d", i), leafFallback)
			kids = append(kids, id)
			ts = append(ts, wrap(leaf.Transport("building")))
		}
		ft.rootID = nextID()
		ft.bounds[ft.rootID] = budget
		ft.childOf[ft.rootID] = kids
		root, err := NewTier(tcfg("building", "building", ft.rootID, budget, false), ts)
		if err != nil {
			t.Fatal(err)
		}
		ft.root = root
		return ft
	}

	rowFallback := budget * floorFraction / units.Watts(rows)
	leafFallback := rowFallback * floorFraction / units.Watts(perRow)
	rowIDs := make([]int16, rows)
	rowKids := make([][]int16, rows)
	rowTs := make([][]cluster.Transport, rows)
	li := 0
	for r := 0; r < rows; r++ {
		for j := 0; j < perRow; j++ {
			leaf, id := newLeaf(fmt.Sprintf("n%d", li), leafFallback)
			li++
			rowKids[r] = append(rowKids[r], id)
			rowTs[r] = append(rowTs[r], wrap(leaf.Transport(fmt.Sprintf("row%d", r))))
		}
	}
	uplinks := make([]cluster.Transport, rows)
	var kids []int16
	for r := 0; r < rows; r++ {
		id := nextID()
		rowIDs[r] = id
		ft.bounds[id] = rowFallback
		ft.childOf[id] = rowKids[r]
		kids = append(kids, id)
		row, err := NewTier(tcfg(fmt.Sprintf("row%d", r), "row", id, rowFallback, true), rowTs[r])
		if err != nil {
			t.Fatal(err)
		}
		ft.rows = append(ft.rows, row)
		ft.uplinkIdx = append(ft.uplinkIdx, txIdx)
		uplinks[r] = wrap(row.Transport("building"))
	}
	ft.rootID = nextID()
	ft.bounds[ft.rootID] = budget
	ft.childOf[ft.rootID] = kids
	root, err := NewTier(tcfg("building", "building", ft.rootID, budget, false), uplinks)
	if err != nil {
		t.Fatal(err)
	}
	ft.root = root
	return ft
}

// capPoint is one value in a node's enforced-cap history: val held
// from time from until the next point.
type capPoint struct {
	val  float64 // µW
	from time.Duration
}

// timerSlack absorbs AfterFunc lateness and the time a tier's forced
// fallback wave takes before the fallback event is recorded.
const timerSlack = 250 * time.Millisecond

// rpcSkew bounds how much later a child stamps a lease than the
// coordinator that sent it (transport latency, including the injected
// 2 ms windows): the coordinator's entitlement to assume expiry starts
// up to this much before the deadline the child's own record implies.
const rpcSkew = 5 * time.Millisecond

// checkTierConservation replays the shared flight recorder's lease
// events and asserts, at every event, two things per tier.
//
// First, the assumable caps of the tier's children sum within a cap
// the tier itself was held to within the last child-lease TTL. A
// child's assumable cap is what it enforces while its lease is live,
// and its fallback once the lease deadline passes — because from that
// instant the parent is entitled to re-grant the difference without
// coordination while the child's own timer races to revert it. Both
// windows are the protocol's actual promise, not fudge factors: a tier
// that reverts to fallback cannot revoke leases granted under the old
// budget, only let them lapse (hence the tier-cap history window), and
// an expired child reverts itself a timer-fire after its parent wrote
// it off (hence the assumable cap). What no fault interleaving may
// ever produce is live leases summing past every budget the tier was
// recently held to.
//
// Second, the lapse actually happens: once a deadline is timerSlack
// stale, the child's ENFORCED cap must have come down to its fallback
// — the "rows within one TTL, leaves within two" cascade, checked from
// the replay rather than the end state.
func checkTierConservation(t *testing.T, events []flight.Event, ft *faultTree, childTTL time.Duration) {
	t.Helper()
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	caps := make(map[int16]float64, len(ft.bounds))
	deadline := make(map[int16]time.Duration, len(ft.bounds))
	hist := make(map[int16][]capPoint, len(ft.bounds))
	for id, fb := range ft.bounds {
		caps[id] = float64(fb) * 1e6 // µW, matching flight lease values
		hist[id] = []capPoint{{val: caps[id]}}
	}
	// bound is the largest cap the tier was held to over [w-grace, w].
	grace := childTTL + timerSlack
	bound := func(tier int16, w time.Duration) float64 {
		h := hist[tier]
		max := 0.0
		for i, p := range h {
			until := w
			if i+1 < len(h) {
				until = h[i+1].from
			}
			if until >= w-grace && p.val > max {
				max = p.val
			}
		}
		return max
	}
	assumable := func(id int16, w time.Duration) float64 {
		if d, ok := deadline[id]; ok && w <= d-rpcSkew {
			return caps[id]
		}
		if fb := float64(ft.bounds[id]) * 1e6; caps[id] > fb {
			return fb
		}
		return caps[id]
	}
	for _, e := range events {
		if e.Kind != flight.KindLease || e.Core < 1 {
			continue
		}
		switch e.Arg {
		case flight.LeaseGrant, flight.LeaseRenew:
			caps[e.Core] = float64(e.Value)
			deadline[e.Core] = e.Wall + time.Duration(e.Aux)
			hist[e.Core] = append(hist[e.Core], capPoint{val: float64(e.Value), from: e.Wall})
		case flight.LeaseFallback:
			caps[e.Core] = float64(e.Value)
			delete(deadline, e.Core)
			hist[e.Core] = append(hist[e.Core], capPoint{val: float64(e.Value), from: e.Wall})
		}
		for id, d := range deadline {
			if e.Wall > d+timerSlack && caps[id] > float64(ft.bounds[id])*1e6*1.000001 {
				t.Fatalf("at seq %d: node %d still enforces %.1f W, %v past its lease deadline (fallback %.1f W)",
					e.Seq, id, caps[id]/1e6, e.Wall-d, float64(ft.bounds[id]))
			}
		}
		for tierID, kids := range ft.childOf {
			var sum float64
			for _, k := range kids {
				sum += assumable(k, e.Wall)
			}
			if b := bound(tierID, e.Wall); sum > b*1.000001 {
				t.Fatalf("after seq %d (%s node %d): tier %d children assumably hold %.1f W > every cap (max %.1f W) the tier held in the last %v",
					e.Seq, flight.LeaseName(e.Arg), e.Core, tierID, sum/1e6, b/1e6, grace)
			}
		}
	}
}

// TestTierConservationUnderFaults is the hierarchy's property test:
// randomized 2–3 tier trees driven under schedules covering all seven
// fault classes plus killed mid-tier coordinators must never let any
// tier's children out-hold the cap the tier itself is held to —
// verified from the replayed flight events, not the happy-path state.
func TestTierConservationUnderFaults(t *testing.T) {
	const rounds = 40
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			threeTier := seed%2 == 1
			rec := flight.New(1 << 16)
			var vclock atomic.Int64
			clock := func() time.Duration { return time.Duration(vclock.Load()) }

			// One window of every fault class at a random time aimed at a
			// random transport (or everyone), so each run exercises the
			// full class alphabet.
			var sched fault.Schedule
			for class := fault.ClassEIO; class <= fault.ClassOffline; class++ {
				target := rng.Intn(24)
				if rng.Intn(10) == 0 {
					target = -1
				}
				sched = append(sched, fault.Entry{
					At:    time.Duration(rng.Intn(rounds-10)) * roundTick,
					For:   time.Duration(2+rng.Intn(10)) * roundTick,
					Class: class,
					CPU:   target,
					Prob:  0.4 + 0.5*rng.Float64(),
					Delay: 2 * time.Millisecond,
				})
			}

			ttl := 20 * time.Millisecond
			ft := buildFaultTree(t, rng, rec, clock, sched, threeTier, ttl)
			defer ft.close()

			// A killed mid-tier coordinator: one row stops stepping and
			// its uplink partitions for a window of rounds.
			killRow, killFrom, killTo := -1, 0, 0
			if threeTier && len(ft.rows) > 0 {
				killRow = rng.Intn(len(ft.rows))
				killFrom = 10 + rng.Intn(10)
				killTo = killFrom + 8 + rng.Intn(8)
				sched = append(sched, fault.Entry{
					At:    time.Duration(killFrom) * roundTick,
					For:   time.Duration(killTo-killFrom) * roundTick,
					Class: fault.ClassOffline,
					CPU:   ft.uplinkIdx[killRow],
				})
				// The wrappers share the schedule slice header; rebuild
				// their view to include the kill window.
				refreshSchedules(ft, sched)
			}

			ctx := context.Background()
			for round := 0; round < rounds; round++ {
				vclock.Store(int64(round) * int64(roundTick))
				for r, row := range ft.rows {
					if r == killRow && round >= killFrom && round < killTo {
						continue
					}
					if err := row.Step(ctx); err != nil {
						t.Fatalf("round %d row %d: %v", round, r, err)
					}
				}
				if err := ft.root.Step(ctx); err != nil {
					t.Fatalf("round %d root: %v", round, err)
				}
				time.Sleep(2 * time.Millisecond)
			}

			// The tree still coordinated every round despite the faults.
			if got := ft.root.Coordinator().Rounds(); got != rounds {
				t.Errorf("root coordinated %d rounds, want %d", got, rounds)
			}
			// End state: the leaves' enforced caps fit the building budget.
			var sum units.Watts
			for _, l := range ft.leaves {
				sum += l.Limit()
			}
			if float64(sum) > float64(ft.budget)+slack {
				t.Errorf("leaf caps %v exceed budget %v at end of run", sum, ft.budget)
			}
			checkTierConservation(t, rec.Dump("fault-run").Events, ft, ttl)
		})
	}
}

// refreshSchedules swaps the schedule every fault wrapper consults —
// needed when windows are appended after the tree was wired.
func refreshSchedules(ft *faultTree, sched fault.Schedule) {
	update := func(tr cluster.Transport) {
		if f, ok := tr.(*faultTransport); ok {
			f.sched = sched
		}
	}
	for _, row := range ft.rows {
		row.mu.Lock()
		for _, c := range row.children {
			update(c)
		}
		row.mu.Unlock()
	}
	ft.root.mu.Lock()
	for _, c := range ft.root.children {
		update(c)
	}
	ft.root.mu.Unlock()
}
