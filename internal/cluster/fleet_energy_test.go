package cluster

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/powerapi"
)

func TestFleetEnergyRollups(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFleet(100, reg)

	stA := &powerapi.NodeStatus{
		Node: "a",
		Energy: &powerapi.EnergyStatus{
			ElapsedSeconds: 60, Intervals: 60,
			TotalUJ: 3_000_000_000, TotalJoules: 3000,
			OvershootUJ: 40_000_000, OvershootJoules: 40, ExcludedUJ: 10_000_000,
			CostUSD: 0.03, CarbonGrams: 12,
			Apps: []powerapi.AppEnergy{
				{Name: "gcc", Core: 0, Joules: 2000},
				{Name: "cam4", Core: 1, Joules: 500},
			},
			Anomalies: map[string]uint64{"overshoot": 2},
		},
	}
	stB := &powerapi.NodeStatus{
		Node: "b",
		Energy: &powerapi.EnergyStatus{
			ElapsedSeconds: 90, Intervals: 90,
			TotalUJ: 1_000_000_000, TotalJoules: 1000,
			CostUSD: 0.01, CarbonGrams: 4,
			Apps: []powerapi.AppEnergy{
				{Name: "gcc", Core: 0, Joules: 800},
			},
			Anomalies: map[string]uint64{"overshoot": 1, "straggler": 3},
		},
	}

	f.ObserveRound(1, 10*time.Millisecond, []NodeObservation{
		obsFor("a", 2*time.Millisecond, 30, 40, stA, true),
		obsFor("b", 3*time.Millisecond, 25, 35, stB, true),
		obsFor("c", 1*time.Millisecond, 10, 20, nil, false), // no ledger: silent
	})

	snap := f.Snapshot()
	if snap.EnergyJoules != 4000 {
		t.Errorf("fleet energy = %v J, want 4000", snap.EnergyJoules)
	}
	// Budget integrates over the longest node run clock: 100 W × 90 s.
	if snap.EnergyBudgetJoules != 9000 {
		t.Errorf("energy budget = %v J, want 9000", snap.EnergyBudgetJoules)
	}
	if snap.OvershootJoules != 40 || snap.ExcludedJoules != 10 {
		t.Errorf("overshoot/excluded = %v/%v J, want 40/10", snap.OvershootJoules, snap.ExcludedJoules)
	}
	if snap.EnergyCostUSD != 0.04 || snap.EnergyCarbonGrams != 16 {
		t.Errorf("cost/carbon = %v/%v, want 0.04/16", snap.EnergyCostUSD, snap.EnergyCarbonGrams)
	}
	if snap.AnomalyCounts["overshoot"] != 3 || snap.AnomalyCounts["straggler"] != 3 {
		t.Errorf("anomaly counts = %v", snap.AnomalyCounts)
	}

	// Top apps merge across nodes, sorted by joules; node cost splits
	// proportionally to attributed energy.
	if len(snap.TopEnergyApps) != 2 {
		t.Fatalf("top apps = %+v", snap.TopEnergyApps)
	}
	gcc := snap.TopEnergyApps[0]
	if gcc.Name != "gcc" || gcc.Joules != 2800 || gcc.Nodes != 2 {
		t.Errorf("gcc rollup = %+v", gcc)
	}
	// gcc's cost: 2000/3000 of a's $0.03 + 800/1000 of b's $0.01.
	if want := 0.03*2000/3000 + 0.01*800/1000; gcc.CostUSD < want-1e-12 || gcc.CostUSD > want+1e-12 {
		t.Errorf("gcc cost = %v, want %v", gcc.CostUSD, want)
	}
	if snap.TopEnergyApps[1].Name != "cam4" || snap.TopEnergyApps[1].Joules != 500 {
		t.Errorf("second app = %+v", snap.TopEnergyApps[1])
	}

	// Per-node rows carry their own energy and anomaly tallies.
	if snap.Nodes[0].EnergyJoules != 3000 || snap.Nodes[0].Anomalies != 2 {
		t.Errorf("node a row = %+v", snap.Nodes[0])
	}
	if snap.Nodes[1].Anomalies != 4 {
		t.Errorf("node b anomalies = %d, want 4", snap.Nodes[1].Anomalies)
	}
	if snap.Nodes[2].EnergyJoules != 0 {
		t.Errorf("ledger-less node reports energy: %+v", snap.Nodes[2])
	}

	// And the registry gauges agree with the snapshot.
	vals := reg.Values()
	if vals["fleet_energy_joules"] != 4000 || vals["fleet_energy_budget_joules"] != 9000 {
		t.Errorf("energy gauges = %v / %v", vals["fleet_energy_joules"], vals["fleet_energy_budget_joules"])
	}
	if vals[`fleet_anomalies_total{kind="straggler"}`] != 3 {
		t.Errorf("anomaly gauge = %v", vals[`fleet_anomalies_total{kind="straggler"}`])
	}
}

// More apps than EnergyTopK: the ranking truncates but keeps the largest.
func TestFleetEnergyTopKTruncates(t *testing.T) {
	f := NewFleet(100, nil)
	apps := make([]powerapi.AppEnergy, EnergyTopK+3)
	for i := range apps {
		apps[i] = powerapi.AppEnergy{Name: string(rune('a' + i)), Core: i, Joules: float64(100 - i)}
	}
	st := &powerapi.NodeStatus{
		Node:   "n",
		Energy: &powerapi.EnergyStatus{ElapsedSeconds: 1, TotalJoules: 1000, Apps: apps},
	}
	f.ObserveRound(1, time.Millisecond, []NodeObservation{obsFor("n", time.Millisecond, 10, 20, st, true)})
	snap := f.Snapshot()
	if len(snap.TopEnergyApps) != EnergyTopK {
		t.Fatalf("top apps = %d, want %d", len(snap.TopEnergyApps), EnergyTopK)
	}
	if snap.TopEnergyApps[0].Name != "a" || snap.TopEnergyApps[EnergyTopK-1].Joules <= snap.TopEnergyApps[0].Joules-float64(EnergyTopK) {
		t.Errorf("ranking order: %+v", snap.TopEnergyApps)
	}
}
