package cluster

import (
	"testing"
	"time"
)

func TestWeightValidation(t *testing.T) {
	nodes := []*Node{hungry(t, "a"), hungry(t, "b")}
	if _, err := New(nodes, Config{Budget: 80, Weights: []float64{1}}); err == nil {
		t.Error("wrong-length weights accepted")
	}
	if _, err := New(nodes, Config{Budget: 80, Weights: []float64{1, 0}}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := New(nodes, Config{Budget: 80, Weights: []float64{2, 1}}); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
}

// Two identically hungry nodes with 2:1 weights: the heavier node ends with
// the larger share of the budget.
func TestWeightsBiasDistribution(t *testing.T) {
	nodes := []*Node{hungry(t, "heavy"), hungry(t, "light")}
	c, err := New(nodes, Config{Budget: 80, Weights: []float64{2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	limits := c.Limits()
	if limits[0] <= limits[1] {
		t.Errorf("weighted node limit %v not above unweighted %v", limits[0], limits[1])
	}
	// Floors and budget still hold.
	if limits[1] < 20-0.5 {
		t.Errorf("light node below floor: %v", limits[1])
	}
	if sum := limits[0] + limits[1]; sum > 80+0.5 {
		t.Errorf("limits sum %v over budget", sum)
	}
}

// Three nodes with mixed demand: budget concentrates on the two hungry
// nodes while the idle one keeps only its floor-ish share.
func TestThreeNodeMixedDemand(t *testing.T) {
	nodes := []*Node{hungry(t, "a"), hungry(t, "b"), light(t, "c")}
	c, err := New(nodes, Config{Budget: 120})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	limits := c.Limits()
	if limits[0] <= 40 || limits[1] <= 40 {
		t.Errorf("hungry nodes did not grow past the equal split: %v", limits)
	}
	if limits[2] >= 40 {
		t.Errorf("light node kept %v, expected to shrink below the equal split", limits[2])
	}
	var sum float64
	for _, l := range limits {
		sum += float64(l)
	}
	if sum > 120.5 {
		t.Errorf("limits sum %.1f over budget", sum)
	}
	if c.TotalPower() > 120*1.05 {
		t.Errorf("total power %v over budget", c.TotalPower())
	}
}
