// Package cluster implements a machine-room power coordinator over the
// per-node power-delivery daemons — the two-level hierarchy the paper's
// related work describes (Dynamo, SmoothOperator, No-"Power"-Struggles):
// a room-level budget is split across nodes, each node's share is enforced
// by its own differential-power-delivery daemon, and the coordinator
// periodically shifts budget from nodes with headroom to nodes whose limit
// binds. The paper's daemon is exactly the "node-level primitive" such
// systems need; this package closes the loop above it.
//
// The coordinator talks to nodes through the Transport interface: the
// in-process implementation (New) drives simulated machines in lockstep for
// deterministic experiments, while cmd/powercoord runs the same
// reallocation code over remote powerd daemons via the powerapi wire
// protocol (NewOverTransports) — with concurrent fan-out, per-node
// timeouts, retry with backoff, quarantine of repeatedly-failing nodes, and
// lease-based grants so a partitioned node reverts to a safe cap instead of
// holding a stale share of the room budget.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/metrics"
	"repro/internal/powerapi"
	"repro/internal/sim"
	"repro/internal/tracing"
	"repro/internal/units"
)

// Config parameterises the coordinator.
type Config struct {
	// Budget is the total power available to the node set.
	Budget units.Watts

	// Interval is the reallocation period (default 5 s — coordinators run
	// slower than node daemons, as in Dynamo's hierarchy).
	Interval time.Duration

	// FloorFraction is each node's guaranteed share of an equal split
	// (default 0.5): a node never drops below
	// FloorFraction * Budget / numNodes, so no node starves while another
	// hoards. The floor doubles as the lease fallback cap: the sum of
	// floors never exceeds the budget, so even a fully partitioned room
	// stays within it.
	FloorFraction float64

	// FloorBudget, when set, derives the per-node floors (and lease
	// fallback caps) from this fixed figure instead of the current
	// Budget: floor = FloorBudget × FloorFraction / n. A tier whose own
	// budget is a revocable lease sets this to its fallback cap, so the
	// floors it promises downward stay safe under any budget the tier
	// can be held to — which is what lets SetBudget move Budget without
	// moving the floors beneath it. Required for SetBudget.
	FloorBudget units.Watts

	// RoundBase offsets this coordinator's round IDs (round = RoundBase
	// + counter), so the coordinators of one tier tree mint disjoint ID
	// ranges and their trace logs merge without collision. Use
	// tracing.RoundIDBase(name).
	RoundBase uint64

	// PriorLedger seeds the acknowledged-grant ledger by node name when
	// a coordinator is rebuilt over changed membership (Coordinator.
	// LeaseLedger exports it). The initial grant wave then phases
	// shrinks before grows against what surviving nodes actually hold,
	// instead of assuming a fresh room and transiently over-committing
	// the budget.
	PriorLedger map[string]LedgerEntry

	// BindMargin is how close (fractionally) measured power must sit to a
	// node's limit for the node to count as constrained and bid for more
	// (default 0.05).
	BindMargin float64

	// Weights optionally biases the distribution across nodes (a node
	// with weight 2 outbids a weight-1 node at equal demand) — the
	// room-level analogue of the paper's application shares. Nil means
	// equal weights; otherwise one positive entry per node.
	Weights []float64

	// LeaseTTL is how long a budget grant stays valid without renewal;
	// a node that stops hearing from the coordinator reverts to its floor
	// when it elapses. Default 3×Interval. In-process transports cannot be
	// partitioned and ignore it.
	LeaseTTL time.Duration

	// NodeTimeout bounds each remote node call (default 2 s).
	NodeTimeout time.Duration

	// Retries is how many extra attempts a failed node call gets within
	// one step (default 2), waiting RetryBackoff, doubling per attempt
	// (default 50 ms).
	Retries      int
	RetryBackoff time.Duration

	// QuarantineAfter is how many consecutive failed steps a node may
	// accumulate before the coordinator quarantines it: its budget
	// reservation decays to the floor once its lease expires, and it is
	// re-admitted on the first successful report. Default 3.
	QuarantineAfter int

	// Metrics optionally instruments the coordinator: reallocation
	// counts, budget moved, per-node limit gauges, transport failures,
	// and quarantine state.
	Metrics *metrics.Registry

	// Tracer optionally records a span tree per reallocation round: the
	// concurrent report fan-out, the plan, and every grant, each stamped
	// with the node it touched. The round ID is propagated to nodes over
	// the powerapi envelope so node-side records join the coordinator's
	// by ID (tracing.Merge). Nil disables tracing at zero cost.
	Tracer *tracing.Tracer

	// Fleet optionally aggregates the reports every round collects —
	// power against budget, per-app watts, RPC latencies, stragglers,
	// piggybacked node metrics — into the rollups /debug/fleet serves.
	Fleet *Fleet

	// now is the coordinator's clock; tests may override it.
	now func() time.Time
}

func (c *Config) fill(n int) error {
	if c.Budget <= 0 {
		return fmt.Errorf("cluster: budget must be positive")
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.FloorFraction <= 0 || c.FloorFraction > 1 {
		c.FloorFraction = 0.5
	}
	if c.FloorBudget < 0 {
		return fmt.Errorf("cluster: negative floor budget %v", c.FloorBudget)
	}
	if c.FloorBudget > c.Budget {
		return fmt.Errorf("cluster: floor budget %v exceeds budget %v", c.FloorBudget, c.Budget)
	}
	if c.BindMargin <= 0 {
		c.BindMargin = 0.05
	}
	if n == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	if c.Weights != nil {
		if len(c.Weights) != n {
			return fmt.Errorf("cluster: %d weights for %d nodes", len(c.Weights), n)
		}
		for i, w := range c.Weights {
			if w <= 0 {
				return fmt.Errorf("cluster: node %d weight %g not positive", i, w)
			}
		}
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * c.Interval
	}
	if c.NodeTimeout <= 0 {
		c.NodeTimeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.now == nil {
		c.now = time.Now
	}
	return nil
}

// weight returns node i's bid multiplier.
func (c Config) weight(i int) float64 {
	if c.Weights == nil {
		return 1
	}
	return c.Weights[i]
}

// LedgerEntry is one node's acknowledged grant: the cap the
// coordinator can prove the node enforces until the lease deadline.
type LedgerEntry struct {
	Granted units.Watts
	Until   time.Time
}

// Coordinator redistributes a power budget across nodes reached through
// Transports.
type Coordinator struct {
	cfg    Config
	ts     []Transport
	nodes  []*Node // in-process set when built via New; drives Run
	strict bool    // in-process mode: any transport error aborts the step
	round  atomic.Uint64

	// stepMu serializes whole rounds against budget changes, so a
	// parent's cascaded SetBudget never interleaves with this tier's
	// own grant wave.
	stepMu sync.Mutex

	mu         sync.Mutex
	limits     []units.Watts // current target limit per node
	granted    []units.Watts // last acknowledged grant per node
	fbGranted  []units.Watts // fallback cap carried by the last grant per node
	leaseUntil []time.Time   // coordinator-side lease deadline per node
	lastPower  []units.Watts // power from each node's last good report
	lastMax    []units.Watts // max watts from each node's last good report
	lastStatus []*powerapi.NodeStatus
	moves      int
	fails      []int  // consecutive failed steps per node
	quar       []bool // quarantined nodes

	// Optional instrumentation; nil handles no-op.
	mRealloc    *metrics.Counter
	mMovedWatts *metrics.Counter
	mNodeLimit  *metrics.GaugeVec
	mTotalPower *metrics.Gauge
	mFailures   *metrics.CounterVec
	mQuar       *metrics.GaugeVec
}

// Node couples one simulated machine with its power-delivery daemon.
type Node struct {
	Name   string
	M      *sim.Machine
	Daemon *daemon.Daemon
}

// New builds an in-process coordinator over simulated nodes and programs
// the initial equal split. Transport errors (including the initial grants)
// are strict: they abort construction and steps, preserving the
// deterministic lockstep semantics experiments rely on.
func New(nodes []*Node, cfg Config) (*Coordinator, error) {
	if err := cfg.fill(len(nodes)); err != nil {
		return nil, err
	}
	for i, n := range nodes {
		if n == nil || n.M == nil || n.Daemon == nil {
			return nil, fmt.Errorf("cluster: node %d incomplete", i)
		}
	}
	ts := make([]Transport, len(nodes))
	for i, n := range nodes {
		ts[i] = localTransport{n}
	}
	c, err := newCoordinator(ts, cfg, true)
	if err != nil {
		return nil, err
	}
	c.nodes = append([]*Node(nil), nodes...)
	return c, nil
}

// NewOverTransports builds a coordinator over arbitrary node transports
// (typically powerapi clients speaking to remote powerd daemons) and
// attempts the initial equal split. Unreachable nodes do not abort
// construction: they accumulate failures like any other step and receive
// their grant when they come back.
func NewOverTransports(ts []Transport, cfg Config) (*Coordinator, error) {
	if err := cfg.fill(len(ts)); err != nil {
		return nil, err
	}
	for i, t := range ts {
		if t == nil {
			return nil, fmt.Errorf("cluster: transport %d is nil", i)
		}
	}
	return newCoordinator(ts, cfg, false)
}

func newCoordinator(ts []Transport, cfg Config, strict bool) (*Coordinator, error) {
	n := len(ts)
	floorBase := cfg.Budget
	if cfg.FloorBudget > 0 {
		floorBase = cfg.FloorBudget
	}
	var floorSum units.Watts
	for range ts {
		floorSum += floorBase * units.Watts(cfg.FloorFraction) / units.Watts(n)
	}
	if floorSum > cfg.Budget {
		return nil, fmt.Errorf("cluster: floors %v exceed budget %v", floorSum, cfg.Budget)
	}
	c := &Coordinator{
		cfg:        cfg,
		ts:         append([]Transport(nil), ts...),
		strict:     strict,
		limits:     make([]units.Watts, n),
		granted:    make([]units.Watts, n),
		fbGranted:  make([]units.Watts, n),
		leaseUntil: make([]time.Time, n),
		lastPower:  make([]units.Watts, n),
		lastMax:    make([]units.Watts, n),
		lastStatus: make([]*powerapi.NodeStatus, n),
		fails:      make([]int, n),
		quar:       make([]bool, n),
	}
	if reg := cfg.Metrics; reg != nil {
		c.mRealloc = reg.Counter("cluster_reallocations_total", "Coordinator intervals that moved budget between nodes.")
		c.mMovedWatts = reg.Counter("cluster_budget_moved_watts_total", "Total absolute budget shifted between nodes, in watts.")
		c.mNodeLimit = reg.GaugeVec("cluster_node_limit_watts", "Current per-node power limit in watts.", "node")
		c.mTotalPower = reg.Gauge("cluster_total_power_watts", "Instantaneous power summed across all nodes.")
		c.mFailures = reg.CounterVec("cluster_transport_failures_total", "Node calls that failed after all retries, by node.", "node")
		c.mQuar = reg.GaugeVec("cluster_node_quarantined", "1 while the node is quarantined for repeated failures.", "node")
	}
	equal := cfg.Budget / units.Watts(n)
	for i := range c.ts {
		c.limits[i] = equal
	}
	if cfg.PriorLedger != nil {
		now := cfg.now()
		for i, t := range c.ts {
			if e, ok := cfg.PriorLedger[t.Name()]; ok && e.Granted > 0 && now.Before(e.Until) {
				c.granted[i] = e.Granted
				c.leaseUntil[i] = e.Until
			}
		}
	}
	if strict {
		if err := c.grantAll(context.Background(), equal); err != nil {
			return nil, err
		}
		return c, nil
	}
	// Lenient construction phases the initial wave like any other round:
	// survivors seeded from a prior ledger shrink to the new equal split
	// before newcomers grow into it, so rebuilding a coordinator over
	// changed membership never transiently over-commits the budget.
	targets := make([]units.Watts, n)
	healthy := make([]bool, n)
	for i := range targets {
		targets[i] = equal
		healthy[i] = true
	}
	if err := c.issueGrants(context.Background(), targets, healthy, nil); err != nil {
		return nil, err
	}
	return c, nil
}

// LeaseLedger exports the acknowledged-grant ledger by node name, for
// seeding a rebuilt coordinator's Config.PriorLedger across membership
// changes.
func (c *Coordinator) LeaseLedger() map[string]LedgerEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]LedgerEntry, len(c.ts))
	for i, t := range c.ts {
		if c.granted[i] > 0 {
			out[t.Name()] = LedgerEntry{Granted: c.granted[i], Until: c.leaseUntil[i]}
		}
	}
	return out
}

// grantAll extends the same grant to every node; strict mode propagates the
// first error, lenient mode records failures.
func (c *Coordinator) grantAll(ctx context.Context, limit units.Watts) error {
	g := Grant{Limit: limit, TTL: c.cfg.LeaseTTL, Fallback: c.floor()}
	errs := make([]error, len(c.ts))
	var wg sync.WaitGroup
	for i := range c.ts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.callGrant(ctx, i, g)
		}(i)
	}
	wg.Wait()
	now := c.cfg.now()
	for i, err := range errs {
		if err != nil {
			if c.strict {
				return fmt.Errorf("cluster: node %s: %w", c.ts[i].Name(), err)
			}
			c.noteFailure(i)
			continue
		}
		c.granted[i] = limit
		c.leaseUntil[i] = now.Add(c.cfg.LeaseTTL)
		c.mNodeLimit.With(c.ts[i].Name()).Set(float64(limit))
	}
	return nil
}

// floor is the per-node guaranteed share, which doubles as the lease
// fallback cap. With FloorBudget set it is a constant, independent of
// whatever budget the coordinator currently holds.
func (c *Coordinator) floor() units.Watts {
	base := c.cfg.Budget
	if c.cfg.FloorBudget > 0 {
		base = c.cfg.FloorBudget
	}
	return base * units.Watts(c.cfg.FloorFraction) / units.Watts(len(c.ts))
}

// Limits reports the current per-node limits.
func (c *Coordinator) Limits() []units.Watts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]units.Watts(nil), c.limits...)
}

// Reallocations reports how many intervals actually moved budget.
func (c *Coordinator) Reallocations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.moves
}

// Round reports the ID of the latest reallocation round (zero before
// the first Step), RoundBase offset included.
func (c *Coordinator) Round() uint64 {
	r := c.round.Load()
	if r == 0 {
		return 0
	}
	return c.cfg.RoundBase + r
}

// Rounds reports how many reallocation rounds have run.
func (c *Coordinator) Rounds() uint64 { return c.round.Load() }

// Budget reports the budget the coordinator currently cascades.
func (c *Coordinator) Budget() units.Watts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Budget
}

// Quarantined reports whether node i is currently quarantined.
func (c *Coordinator) Quarantined(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quar[i]
}

// Run advances all in-process nodes in lockstep for a duration of virtual
// time, reallocating the budget every interval: each node bids its measured
// power, constrained nodes (power at their limit) bid extra, and the
// budget is water-filled over the bids above per-node floors — so budget
// flows from idle nodes to power-hungry ones while every node keeps its
// floor (min-funding revocation again, one level up). Run requires a
// coordinator built with New; networked coordinators call Step on a
// wall-clock ticker instead.
func (c *Coordinator) Run(d time.Duration) error {
	if c.nodes == nil {
		return fmt.Errorf("cluster: Run needs in-process nodes; use Step")
	}
	for elapsed := time.Duration(0); elapsed < d; elapsed += c.cfg.Interval {
		step := c.cfg.Interval
		if rem := d - elapsed; rem < step {
			step = rem
		}
		for _, n := range c.nodes {
			n.M.Run(step)
			if err := n.Daemon.Err(); err != nil {
				return fmt.Errorf("cluster: node %s: %w", n.Name, err)
			}
		}
		if err := c.Step(context.Background()); err != nil {
			return err
		}
	}
	return nil
}

// callReport fetches one node's report with per-attempt timeout and retry
// with doubling backoff.
func (c *Coordinator) callReport(ctx context.Context, i int) (Report, error) {
	var lastErr error
	backoff := c.cfg.RetryBackoff
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return Report{}, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.NodeTimeout)
		r, err := c.ts[i].Report(actx)
		cancel()
		if err == nil {
			return r, nil
		}
		lastErr = err
	}
	return Report{}, lastErr
}

// callGrant issues one grant with per-attempt timeout and retry.
func (c *Coordinator) callGrant(ctx context.Context, i int, g Grant) error {
	var lastErr error
	backoff := c.cfg.RetryBackoff
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.NodeTimeout)
		err := c.ts[i].Grant(actx, g)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return lastErr
}

// noteFailure bumps a node's consecutive-failure count and quarantines it
// past the threshold. Caller must not hold c.mu.
func (c *Coordinator) noteFailure(i int) {
	c.mu.Lock()
	c.fails[i]++
	if c.fails[i] >= c.cfg.QuarantineAfter && !c.quar[i] {
		c.quar[i] = true
		c.mQuar.With(c.ts[i].Name()).Set(1)
	}
	c.mu.Unlock()
	c.mFailures.With(c.ts[i].Name()).Inc()
}

// Step performs one reallocation round: fan out report requests to all
// nodes concurrently, water-fill the budget over the healthy bids, then
// issue grants — shrinking grants first and growing ones only afterwards,
// so the sum of outstanding grants (plus expired nodes' fallback floors)
// never exceeds the budget even mid-step or under partial failure.
//
// Each round gets a monotonic ID, stamped on every node RPC through the
// powerapi envelope and recorded (with report/plan/grant spans) when a
// Tracer is configured; a Fleet, when configured, observes every round's
// reports and RPC latencies.
func (c *Coordinator) Step(ctx context.Context) error {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	rid := c.cfg.RoundBase + c.round.Add(1)
	rb := c.cfg.Tracer.Begin(rid)
	defer rb.End()
	ctx = powerapi.WithRound(ctx, rid)
	began := time.Now()

	n := len(c.ts)
	reports := make([]Report, n)
	errs := make([]error, n)
	rpc := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s0, t0 := rb.Now(), time.Now()
			reports[i], errs[i] = c.callReport(ctx, i)
			rpc[i] = time.Since(t0)
			rb.Span("report", c.ts[i].Name(), s0, rb.Now(), errs[i])
		}(i)
	}
	wg.Wait()

	healthy := make([]bool, n)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			if c.strict {
				return fmt.Errorf("cluster: node %s: %w", c.ts[i].Name(), errs[i])
			}
			c.noteFailure(i)
			continue
		}
		c.mu.Lock()
		c.fails[i] = 0
		if c.quar[i] {
			// First good report re-admits the node.
			c.quar[i] = false
			c.mQuar.With(c.ts[i].Name()).Set(0)
		}
		c.lastPower[i] = reports[i].Power
		c.lastMax[i] = reports[i].Max
		if reports[i].Status != nil {
			c.lastStatus[i] = reports[i].Status
		}
		c.mu.Unlock()
		healthy[i] = true
	}

	planStart := rb.Now()
	targets, moved, shifted := c.plan(reports, healthy)
	rb.Span("plan", "", planStart, rb.Now(), nil)
	grantErr := c.issueGrants(ctx, targets, healthy, rb)

	if c.cfg.Fleet != nil {
		obs := make([]NodeObservation, n)
		for i := 0; i < n; i++ {
			obs[i] = NodeObservation{Node: c.ts[i].Name(), Err: errs[i], RPC: rpc[i], Report: reports[i]}
		}
		c.cfg.Fleet.ObserveRound(rid, time.Since(began), obs)
	}
	if grantErr != nil {
		return grantErr
	}

	c.mu.Lock()
	if moved {
		c.moves++
	}
	var total units.Watts
	for _, p := range c.lastPower {
		total += p
	}
	c.mu.Unlock()
	if moved {
		c.mRealloc.Inc()
		c.mMovedWatts.Add(shifted)
	}
	if c.nodes != nil {
		total = c.totalMachinePower()
	}
	c.mTotalPower.Set(float64(total))
	return nil
}

// plan computes per-node target limits from the healthy reports: floors
// plus a water-fill of the distributable budget over the bids. Unhealthy
// nodes keep their reservation — the last grant while its lease lives, the
// fallback floor after — so the room total stays within budget no matter
// when they come back or expire.
func (c *Coordinator) plan(reports []Report, healthy []bool) (targets []units.Watts, moved bool, shifted float64) {
	n := len(c.ts)
	floor := float64(c.floor())
	now := c.cfg.now()

	c.mu.Lock()
	defer c.mu.Unlock()

	var reserved float64 // held by unhealthy nodes
	bids := make([]float64, 0, n)
	caps := make([]float64, 0, n)
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !healthy[i] {
			r := floor
			if c.granted[i] > 0 && now.Before(c.leaseUntil[i]) {
				r = float64(c.granted[i])
			}
			reserved += r
			continue
		}
		power := float64(reports[i].Power)
		limit := float64(c.limits[i])
		bid := power
		if power >= limit*(1-c.cfg.BindMargin) {
			// The node is pressed against its limit: bid for growth.
			bid = limit * 1.25
		}
		if bid < floor {
			bid = floor
		}
		bids = append(bids, bid*c.cfg.weight(i))
		cap := float64(reports[i].Max) - floor
		if cap < 0 {
			cap = 0
		}
		caps = append(caps, cap)
		idx = append(idx, i)
	}

	distributable := float64(c.cfg.Budget) - floor*float64(len(idx)) - reserved
	if distributable < 0 {
		distributable = 0
	}
	alloc := core.WaterFill(distributable, bids, caps)

	targets = append([]units.Watts(nil), c.limits...)
	for j, i := range idx {
		newLimit := units.Watts(floor + alloc[j])
		if diff := newLimit - c.limits[i]; diff > 0.5 || diff < -0.5 {
			moved = true
			if diff < 0 {
				diff = -diff
			}
			shifted += float64(diff)
		}
		targets[i] = newLimit
		c.limits[i] = newLimit
	}
	return targets, moved, shifted
}

// issueGrants applies the planned targets: shrinking (or renewing equal)
// grants fan out concurrently first; growing grants follow sequentially,
// each capped by the headroom the acknowledged ledger still shows, so a
// failed shrink can never combine with a successful grow to over-commit
// the budget.
func (c *Coordinator) issueGrants(ctx context.Context, targets []units.Watts, healthy []bool, rb *tracing.RoundBuilder) error {
	n := len(c.ts)
	floor := c.floor()
	now := c.cfg.now()

	// effective is the worst-case cap the ledger must assume a node holds.
	effective := func(i int) units.Watts {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.granted[i] > 0 && now.Before(c.leaseUntil[i]) {
			return c.granted[i]
		}
		return floor
	}
	grant := func(i int, limit units.Watts) error {
		s0 := rb.Now()
		err := c.callGrant(ctx, i, Grant{Limit: limit, TTL: c.cfg.LeaseTTL, Fallback: floor})
		rb.Span("grant", c.ts[i].Name(), s0, rb.Now(), err)
		if err != nil {
			if c.strict {
				return fmt.Errorf("cluster: node %s: %w", c.ts[i].Name(), err)
			}
			c.noteFailure(i)
			return nil
		}
		c.mu.Lock()
		c.granted[i] = limit
		c.fbGranted[i] = floor
		c.limits[i] = limit // what the node actually enforces, headroom cap included
		c.leaseUntil[i] = c.cfg.now().Add(c.cfg.LeaseTTL)
		c.mu.Unlock()
		c.mNodeLimit.With(c.ts[i].Name()).Set(float64(limit))
		return nil
	}

	// stable reports whether a node's lease already says exactly what
	// this wave would tell it — same cap, same fallback floor, and more
	// than half its TTL still to run. Renewing it would be a no-op RPC;
	// in steady state that is every node, so skipping here is what lets
	// a round over a quiet fleet cost only its status poll. The
	// half-TTL guard keeps renewals flowing well before expiry when
	// rounds are slow relative to the TTL.
	stable := func(i int, limit units.Watts) bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		d := limit - c.granted[i]
		f := floor - c.fbGranted[i]
		return c.granted[i] > 0 &&
			d <= budgetSlack && d >= -budgetSlack &&
			f <= budgetSlack && f >= -budgetSlack &&
			c.cfg.now().Add(c.cfg.LeaseTTL/2).Before(c.leaseUntil[i])
	}

	// Phase 1: shrinks and renewals, concurrently.
	var wg sync.WaitGroup
	errs := make([]error, n)
	grows := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !healthy[i] {
			continue
		}
		if targets[i] > effective(i) {
			grows = append(grows, i)
			continue
		}
		if stable(i, targets[i]) {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = grant(i, targets[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Phase 2: grows, bounded by the headroom the acknowledged ledger
	// leaves. A node whose shrink failed still occupies its old grant, so
	// the grows squeeze rather than overshoot.
	var held units.Watts
	for i := 0; i < n; i++ {
		held += effective(i)
	}
	headroom := c.cfg.Budget - held
	for _, i := range grows {
		cur := effective(i)
		limit := targets[i]
		delta := limit - cur
		if delta > headroom {
			delta = headroom
			limit = cur + delta
		}
		if delta <= 0 {
			continue
		}
		if err := grant(i, limit); err != nil {
			return err
		}
		headroom -= delta
	}
	return nil
}

// totalMachinePower sums instantaneous power over in-process machines.
func (c *Coordinator) totalMachinePower() units.Watts {
	var t units.Watts
	for _, n := range c.nodes {
		t += n.M.PackagePower()
	}
	return t
}

// budgetSlack absorbs float rounding when comparing watt sums.
const budgetSlack = 1e-6

// SetBudget changes the budget the coordinator cascades — the tier's
// end of a lease granted (or expired) one level up. A growth commits
// immediately and the next Step water-fills the extra. A shrink must
// prove itself first: a scaled-down shrink wave goes out synchronously,
// and the new budget commits only if the acknowledged ledger fits under
// it — otherwise the old budget stays committed and an error tells the
// caller (the tier's agent) to refuse its own lease, which keeps the
// parent's ledger equally honest. That handshake is what makes
// Σ granted ≤ budget recursive across tiers.
//
// Requires Config.FloorBudget: floors must not move with the budget, or
// the fallback caps promised to children would drift.
func (c *Coordinator) SetBudget(ctx context.Context, b units.Watts) error {
	return c.setBudget(ctx, b, false)
}

// ForceBudget clamps the budget unconditionally — the lease-expiry and
// drain path, where the tier cannot refuse the change the way it can
// refuse a lease: the power is already gone one level up. Reachable
// children shrink in the same synchronous wave; unreachable ones hold
// their old caps only until their own leases lapse into fallback, and
// every wave the coordinator plans from here on distributes the clamped
// figure. That lapse window is the "one extra TTL per tier" in the
// fallback-cascade guarantee.
func (c *Coordinator) ForceBudget(ctx context.Context, b units.Watts) error {
	return c.setBudget(ctx, b, true)
}

func (c *Coordinator) setBudget(ctx context.Context, b units.Watts, force bool) error {
	if c.cfg.FloorBudget <= 0 {
		return fmt.Errorf("cluster: SetBudget requires Config.FloorBudget")
	}
	c.stepMu.Lock()
	defer c.stepMu.Unlock()

	n := len(c.ts)
	floor := c.floor()
	floorSum := floor * units.Watts(n)
	if b < floorSum-budgetSlack {
		return fmt.Errorf("cluster: budget %v below the floor sum %v of %d nodes", b, floorSum, n)
	}

	// Record the cascade under the parent's round ID when the context
	// carries one, so the cross-tier timeline joins on it.
	var rb *tracing.RoundBuilder
	if rid := powerapi.RoundFrom(ctx); rid != 0 {
		rb = c.cfg.Tracer.Begin(rid)
		defer rb.End()
	}

	now := c.cfg.now()
	c.mu.Lock()
	old := c.cfg.Budget
	eff := make([]units.Watts, n)
	var held units.Watts
	for i := 0; i < n; i++ {
		eff[i] = floor
		if c.granted[i] > 0 && now.Before(c.leaseUntil[i]) {
			eff[i] = c.granted[i]
		}
		held += eff[i]
	}
	if b >= held-budgetSlack {
		// Growth or no-op: nothing currently held can violate it.
		c.cfg.Budget = b
		c.mu.Unlock()
		return nil
	}
	// Shrink: scale every above-floor allocation so the targets sum to
	// the new budget, preserving the proportions the last plan chose.
	scale := 0.0
	if excess := held - floorSum; excess > 0 {
		scale = float64(b-floorSum) / float64(excess)
	}
	targets := make([]units.Watts, n)
	healthy := make([]bool, n)
	for i := 0; i < n; i++ {
		targets[i] = floor + units.Watts(float64(eff[i]-floor)*scale)
		healthy[i] = true
	}
	c.mu.Unlock()

	if err := c.issueGrants(ctx, targets, healthy, rb); err != nil {
		return err // strict mode only
	}

	// Commit only what the ledger proves: children that refused or were
	// unreachable still hold their old caps until TTL.
	now = c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	held = 0
	for i := 0; i < n; i++ {
		e := floor
		if c.granted[i] > 0 && now.Before(c.leaseUntil[i]) {
			e = c.granted[i]
		}
		held += e
	}
	if held > b+budgetSlack && !force {
		c.cfg.Budget = old
		return fmt.Errorf("cluster: shrink to %v unacknowledged: children still hold %v", b, held)
	}
	c.cfg.Budget = b
	return nil
}

// Aggregate is the subtree summary a mid-tier coordinator reports
// upward as one synthetic node.
type Aggregate struct {
	Power       units.Watts // Σ power over last good reports
	Max         units.Watts // Σ reported max watts
	Children    int         // direct children
	Reporting   int         // children with at least one good report
	Quarantined int
	Leaves      int // leaf nodes in the subtree (children count their own)
	Depth       int // coordinator levels at or below this one
	// Energy sums the children's piggybacked energy summaries; nil when
	// none reported one.
	Energy *powerapi.EnergyStatus
}

// Aggregate rolls the coordinator's last good reports into the summary
// its tier presents upward.
func (c *Coordinator) Aggregate() Aggregate {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := Aggregate{Children: len(c.ts), Depth: 1}
	for i := range c.ts {
		agg.Power += c.lastPower[i]
		agg.Max += c.lastMax[i]
		if c.quar[i] {
			agg.Quarantined++
		}
		if c.lastMax[i] > 0 {
			agg.Reporting++
		}
		leaves := 1
		if st := c.lastStatus[i]; st != nil {
			if st.Tier != nil {
				leaves = st.Tier.Nodes
				if d := st.Tier.Depth + 1; d > agg.Depth {
					agg.Depth = d
				}
			}
			if st.Energy != nil {
				if agg.Energy == nil {
					agg.Energy = &powerapi.EnergyStatus{}
				}
				agg.Energy.Accumulate(st.Energy)
			}
		}
		agg.Leaves += leaves
	}
	return agg
}

// Statuses returns the last piggybacked status per node (nil entries
// for nodes that never carried one), index-aligned with the transports.
func (c *Coordinator) Statuses() []*powerapi.NodeStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*powerapi.NodeStatus(nil), c.lastStatus...)
}

// TotalPower reports the instantaneous power across all nodes: measured
// directly for in-process machines, from the last good reports otherwise.
func (c *Coordinator) TotalPower() units.Watts {
	if c.nodes != nil {
		return c.totalMachinePower()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var t units.Watts
	for _, p := range c.lastPower {
		t += p
	}
	return t
}
