// Package cluster implements a machine-room power coordinator over the
// per-node power-delivery daemons — the two-level hierarchy the paper's
// related work describes (Dynamo, SmoothOperator, No-"Power"-Struggles):
// a room-level budget is split across nodes, each node's share is enforced
// by its own differential-power-delivery daemon, and the coordinator
// periodically shifts budget from nodes with headroom to nodes whose limit
// binds. The paper's daemon is exactly the "node-level primitive" such
// systems need; this package closes the loop above it.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/units"
)

// Node couples one simulated machine with its power-delivery daemon.
type Node struct {
	Name   string
	M      *sim.Machine
	Daemon *daemon.Daemon
}

// Config parameterises the coordinator.
type Config struct {
	// Budget is the total power available to the node set.
	Budget units.Watts

	// Interval is the reallocation period (default 5 s — coordinators run
	// slower than node daemons, as in Dynamo's hierarchy).
	Interval time.Duration

	// FloorFraction is each node's guaranteed share of an equal split
	// (default 0.5): a node never drops below
	// FloorFraction * Budget / numNodes, so no node starves while another
	// hoards.
	FloorFraction float64

	// BindMargin is how close (fractionally) measured power must sit to a
	// node's limit for the node to count as constrained and bid for more
	// (default 0.05).
	BindMargin float64

	// Weights optionally biases the distribution across nodes (a node
	// with weight 2 outbids a weight-1 node at equal demand) — the
	// room-level analogue of the paper's application shares. Nil means
	// equal weights; otherwise one positive entry per node.
	Weights []float64

	// Metrics optionally instruments the coordinator: reallocation
	// counts, budget moved, and per-node limit gauges.
	Metrics *metrics.Registry
}

func (c *Config) fill(n int) error {
	if c.Budget <= 0 {
		return fmt.Errorf("cluster: budget must be positive")
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.FloorFraction <= 0 || c.FloorFraction > 1 {
		c.FloorFraction = 0.5
	}
	if c.BindMargin <= 0 {
		c.BindMargin = 0.05
	}
	if n == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	if c.Weights != nil {
		if len(c.Weights) != n {
			return fmt.Errorf("cluster: %d weights for %d nodes", len(c.Weights), n)
		}
		for i, w := range c.Weights {
			if w <= 0 {
				return fmt.Errorf("cluster: node %d weight %g not positive", i, w)
			}
		}
	}
	return nil
}

// weight returns node i's bid multiplier.
func (c Config) weight(i int) float64 {
	if c.Weights == nil {
		return 1
	}
	return c.Weights[i]
}

// Coordinator redistributes a power budget across nodes.
type Coordinator struct {
	cfg    Config
	nodes  []*Node
	limits []units.Watts
	moves  int

	// Optional instrumentation; nil handles no-op.
	mRealloc    *metrics.Counter
	mMovedWatts *metrics.Counter
	mNodeLimit  *metrics.GaugeVec
	mTotalPower *metrics.Gauge
}

// New builds a coordinator and programs the initial equal split.
func New(nodes []*Node, cfg Config) (*Coordinator, error) {
	if err := cfg.fill(len(nodes)); err != nil {
		return nil, err
	}
	for i, n := range nodes {
		if n == nil || n.M == nil || n.Daemon == nil {
			return nil, fmt.Errorf("cluster: node %d incomplete", i)
		}
	}
	var floorSum units.Watts
	for range nodes {
		floorSum += cfg.Budget * units.Watts(cfg.FloorFraction) / units.Watts(len(nodes))
	}
	if floorSum > cfg.Budget {
		return nil, fmt.Errorf("cluster: floors %v exceed budget %v", floorSum, cfg.Budget)
	}
	c := &Coordinator{
		cfg:    cfg,
		nodes:  append([]*Node(nil), nodes...),
		limits: make([]units.Watts, len(nodes)),
	}
	if reg := cfg.Metrics; reg != nil {
		c.mRealloc = reg.Counter("cluster_reallocations_total", "Coordinator intervals that moved budget between nodes.")
		c.mMovedWatts = reg.Counter("cluster_budget_moved_watts_total", "Total absolute budget shifted between nodes, in watts.")
		c.mNodeLimit = reg.GaugeVec("cluster_node_limit_watts", "Current per-node power limit in watts.", "node")
		c.mTotalPower = reg.Gauge("cluster_total_power_watts", "Instantaneous power summed across all nodes.")
	}
	equal := cfg.Budget / units.Watts(len(nodes))
	for i, n := range c.nodes {
		c.limits[i] = equal
		if err := n.Daemon.SetLimit(equal); err != nil {
			return nil, err
		}
		c.mNodeLimit.With(n.Name).Set(float64(equal))
	}
	return c, nil
}

// Limits reports the current per-node limits.
func (c *Coordinator) Limits() []units.Watts {
	return append([]units.Watts(nil), c.limits...)
}

// Reallocations reports how many intervals actually moved budget.
func (c *Coordinator) Reallocations() int { return c.moves }

// Run advances all nodes in lockstep for a duration of virtual time,
// reallocating the budget every interval: each node bids its measured
// power, constrained nodes (power at their limit) bid extra, and the
// budget is water-filled over the bids above per-node floors — so budget
// flows from idle nodes to power-hungry ones while every node keeps its
// floor (min-funding revocation again, one level up).
func (c *Coordinator) Run(d time.Duration) error {
	for elapsed := time.Duration(0); elapsed < d; elapsed += c.cfg.Interval {
		step := c.cfg.Interval
		if rem := d - elapsed; rem < step {
			step = rem
		}
		for _, n := range c.nodes {
			n.M.Run(step)
			if err := n.Daemon.Err(); err != nil {
				return fmt.Errorf("cluster: node %s: %w", n.Name, err)
			}
		}
		if err := c.reallocate(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Coordinator) reallocate() error {
	n := len(c.nodes)
	floor := float64(c.cfg.Budget) * c.cfg.FloorFraction / float64(n)
	bids := make([]float64, n)
	caps := make([]float64, n)
	for i, node := range c.nodes {
		power := float64(node.M.PackagePower())
		limit := float64(c.limits[i])
		bid := power
		if power >= limit*(1-c.cfg.BindMargin) {
			// The node is pressed against its limit: bid for growth.
			bid = limit * 1.25
		}
		if bid < floor {
			bid = floor
		}
		bids[i] = bid * c.cfg.weight(i)
		chipMax := float64(node.M.Chip().RAPLMax)
		caps[i] = chipMax - floor
		if caps[i] < 0 {
			caps[i] = 0
		}
	}
	distributable := float64(c.cfg.Budget) - floor*float64(n)
	alloc := core.WaterFill(distributable, bids, caps)
	moved := false
	var shifted float64
	for i, node := range c.nodes {
		newLimit := units.Watts(floor + alloc[i])
		if diff := newLimit - c.limits[i]; diff > 0.5 || diff < -0.5 {
			moved = true
			if diff < 0 {
				diff = -diff
			}
			shifted += float64(diff)
		}
		c.limits[i] = newLimit
		if err := node.Daemon.SetLimit(newLimit); err != nil {
			return fmt.Errorf("cluster: node %s: %w", node.Name, err)
		}
		c.mNodeLimit.With(node.Name).Set(float64(newLimit))
	}
	if moved {
		c.moves++
		c.mRealloc.Inc()
		c.mMovedWatts.Add(shifted)
	}
	c.mTotalPower.Set(float64(c.TotalPower()))
	return nil
}

// TotalPower reports the instantaneous power across all nodes.
func (c *Coordinator) TotalPower() units.Watts {
	var t units.Watts
	for _, n := range c.nodes {
		t += n.M.PackagePower()
	}
	return t
}
