package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// newNode builds a Skylake node running the named profiles under a
// frequency-share daemon with equal shares.
func newNode(t *testing.T, name string, apps []string) *Node {
	t.Helper()
	chip := platform.Skylake()
	m, err := sim.New(chip)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]core.AppSpec, len(apps))
	for i, a := range apps {
		p := workload.MustByName(a)
		if err := m.Pin(workload.NewInstance(p), i); err != nil {
			t.Fatal(err)
		}
		specs[i] = core.AppSpec{Name: a, Core: i, Shares: 50, AVX: p.AVX}
	}
	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: chip.RAPLMax,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	return &Node{Name: name, M: m, Daemon: d}
}

func hungry(t *testing.T, name string) *Node {
	apps := make([]string, 10)
	for i := range apps {
		apps[i] = "cactusBSSN"
	}
	return newNode(t, name, apps)
}

func light(t *testing.T, name string) *Node {
	return newNode(t, name, []string{"leela", "leela"})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{Budget: 80}); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := New([]*Node{nil}, Config{Budget: 80}); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := New([]*Node{hungry(t, "a")}, Config{}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestInitialEqualSplit(t *testing.T) {
	nodes := []*Node{hungry(t, "a"), light(t, "b")}
	c, err := New(nodes, Config{Budget: 80})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range c.Limits() {
		if l != 40 {
			t.Errorf("node %d initial limit = %v, want 40", i, l)
		}
	}
	if nodes[0].Daemon.Limit() != 40 {
		t.Errorf("daemon limit = %v", nodes[0].Daemon.Limit())
	}
}

// The headline behaviour: with one hungry and one light node, the
// coordinator shifts budget to the hungry node, and its throughput beats a
// static equal split.
func TestBudgetFlowsToConstrainedNode(t *testing.T) {
	run := func(dynamic bool) (hungryIPS float64, limits []units.Watts, total units.Watts) {
		nodes := []*Node{hungry(t, "hungry"), light(t, "light")}
		cfg := Config{Budget: 80}
		c, err := New(nodes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if dynamic {
			if err := c.Run(120 * time.Second); err != nil {
				t.Fatal(err)
			}
		} else {
			// Static split: just run the nodes without reallocation.
			for _, n := range nodes {
				n.M.Run(120 * time.Second)
				if err := n.Daemon.Err(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Measure the hungry node's instruction rate over a final window.
		i0 := 0.0
		for core := 0; core < 10; core++ {
			i0 += nodes[0].M.Counters(core).Instr
		}
		for _, n := range nodes {
			n.M.Run(10 * time.Second)
		}
		i1 := 0.0
		for core := 0; core < 10; core++ {
			i1 += nodes[0].M.Counters(core).Instr
		}
		return (i1 - i0) / 10, c.Limits(), c.TotalPower()
	}

	staticIPS, _, _ := run(false)
	dynIPS, limits, total := run(true)

	if limits[0] <= 41 {
		t.Errorf("hungry node limit = %v, expected growth above the equal split", limits[0])
	}
	if limits[1] >= 40 {
		t.Errorf("light node limit = %v, expected to shrink", limits[1])
	}
	// Floors hold.
	if limits[1] < 20-0.5 {
		t.Errorf("light node limit %v below the 20 W floor", limits[1])
	}
	// Budget conserved.
	if got := limits[0] + limits[1]; got > 80+0.5 {
		t.Errorf("limits sum %v exceeds budget", got)
	}
	if total > 80*1.05 {
		t.Errorf("total power %v exceeds budget", total)
	}
	// And the reallocation bought real throughput.
	if dynIPS <= staticIPS*1.05 {
		t.Errorf("dynamic %0.4g not >5%% above static %0.4g", dynIPS, staticIPS)
	}
}

// Two equally hungry nodes split the budget evenly — no oscillating
// favouritism.
func TestSymmetricNodesStayBalanced(t *testing.T) {
	nodes := []*Node{hungry(t, "a"), hungry(t, "b")}
	c, err := New(nodes, Config{Budget: 80})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	limits := c.Limits()
	diff := float64(limits[0] - limits[1])
	if diff < 0 {
		diff = -diff
	}
	if diff > 4 {
		t.Errorf("symmetric nodes diverged: %v vs %v", limits[0], limits[1])
	}
}

// The light node's own workload must not be harmed by donating budget: its
// applications were nowhere near the old limit.
func TestDonorUnharmed(t *testing.T) {
	nodes := []*Node{hungry(t, "hungry"), light(t, "light")}
	c, err := New(nodes, Config{Budget: 80})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// leela on 2 cores of an otherwise idle Skylake draws ~25 W at full
	// speed, under the light node's floor-protected limit: its cores must
	// still run at their ceiling.
	for core := 0; core < 2; core++ {
		if f := nodes[1].M.EffectiveFreq(core); f < 2900*units.MHz {
			t.Errorf("donor core %d throttled to %v", core, f)
		}
	}
	if c.Reallocations() == 0 {
		t.Error("coordinator never moved budget")
	}
}

func TestCoordinatorMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	nodes := []*Node{hungry(t, "n0"), light(t, "n1")}
	c, err := New(nodes, Config{
		Budget:   100,
		Interval: 2 * time.Second,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Reallocations() == 0 {
		t.Fatal("no reallocations happened; cannot exercise the counters")
	}
	if v := reg.Counter("cluster_reallocations_total", "").Value(); v != float64(c.Reallocations()) {
		t.Errorf("cluster_reallocations_total = %v, want %d", v, c.Reallocations())
	}
	if v := reg.Counter("cluster_budget_moved_watts_total", "").Value(); v <= 0 {
		t.Errorf("cluster_budget_moved_watts_total = %v", v)
	}
	limits := c.Limits()
	gv := reg.GaugeVec("cluster_node_limit_watts", "", "node")
	for i, name := range []string{"n0", "n1"} {
		if got := gv.With(name).Value(); got != float64(limits[i]) {
			t.Errorf("node %s limit gauge = %v, want %v", name, got, limits[i])
		}
	}
	if v := reg.Gauge("cluster_total_power_watts", "").Value(); v <= 0 {
		t.Errorf("cluster_total_power_watts = %v", v)
	}
}
