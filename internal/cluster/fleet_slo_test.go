package cluster

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/powerapi"
)

func TestFleetSLORollups(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFleet(100, reg)

	stA := &powerapi.NodeStatus{
		Node: "a",
		SLO: &powerapi.SLOStatus{Services: []powerapi.ServiceSLOStatus{
			{Name: "websearch", P99MS: 60, TargetMS: 80, Rate: 300, Met: true},
			{Name: "ads", P99MS: 25, TargetMS: 20, Rate: 120, Met: false},
		}},
	}
	stB := &powerapi.NodeStatus{
		Node: "b",
		SLO: &powerapi.SLOStatus{Services: []powerapi.ServiceSLOStatus{
			{Name: "websearch", P99MS: 95, TargetMS: 80, Rate: 280, Met: false},
		}},
	}

	f.ObserveRound(1, 10*time.Millisecond, []NodeObservation{
		obsFor("a", 2*time.Millisecond, 30, 40, stA, true),
		obsFor("b", 3*time.Millisecond, 25, 35, stB, true),
		obsFor("c", 1*time.Millisecond, 10, 20, nil, false), // no services: silent
	})

	snap := f.Snapshot()
	if snap.SLOTotal != 3 || snap.SLOMet != 1 {
		t.Errorf("SLO totals = %d met of %d, want 1 of 3", snap.SLOMet, snap.SLOTotal)
	}
	if want := 1.0 / 3.0; snap.SLOAttainment != want {
		t.Errorf("attainment = %v, want %v", snap.SLOAttainment, want)
	}
	if len(snap.SLOServices) != 2 {
		t.Fatalf("service rollups = %+v", snap.SLOServices)
	}
	// Worst-attaining first: ads (0/1) before websearch (1/2).
	ads := snap.SLOServices[0]
	if ads.Name != "ads" || ads.Nodes != 1 || ads.MetNodes != 0 || ads.WorstP99MS != 25 {
		t.Errorf("ads rollup = %+v", ads)
	}
	ws := snap.SLOServices[1]
	if ws.Name != "websearch" || ws.Nodes != 2 || ws.MetNodes != 1 {
		t.Errorf("websearch rollup = %+v", ws)
	}
	if ws.WorstP99MS != 95 || ws.TargetMS != 80 || ws.Rate != 580 {
		t.Errorf("websearch tail/rate = %+v", ws)
	}

	// Per-node rows carry their own tallies.
	if snap.Nodes[0].SLOServices != 2 || snap.Nodes[0].SLOMet != 1 {
		t.Errorf("node a row = %+v", snap.Nodes[0])
	}
	if snap.Nodes[2].SLOServices != 0 {
		t.Errorf("service-less node reports SLO: %+v", snap.Nodes[2])
	}

	vals := reg.Values()
	if vals["fleet_slo_services"] != 3 {
		t.Errorf("fleet_slo_services = %v, want 3", vals["fleet_slo_services"])
	}
	if want := 1.0 / 3.0; vals["fleet_slo_attainment"] != want {
		t.Errorf("fleet_slo_attainment = %v, want %v", vals["fleet_slo_attainment"], want)
	}
}

// A fleet with no reporting services pins attainment at 1 (nothing is
// violated), not 0.
func TestFleetSLOAttainmentDefaultsToOne(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFleet(100, reg)
	f.ObserveRound(1, time.Millisecond, []NodeObservation{
		obsFor("a", time.Millisecond, 10, 20, &powerapi.NodeStatus{Node: "a"}, true),
	})
	if v := reg.Values()["fleet_slo_attainment"]; v != 1 {
		t.Errorf("attainment with no services = %v, want 1", v)
	}
	snap := f.Snapshot()
	if snap.SLOTotal != 0 || len(snap.SLOServices) != 0 {
		t.Errorf("phantom SLO rollup: %+v", snap)
	}
}
