package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/powerapi"
	"repro/internal/units"
)

// HTTPNode is a Transport over the powerapi wire protocol: the coordinator
// code that drives in-process simulations drives remote powerd daemons
// through this adapter unchanged.
type HTTPNode struct {
	name    string
	coord   string
	client  *powerapi.Client
	leaseID atomic.Uint64

	// collect enables piggybacked metrics snapshots on report RPCs.
	// synced tracks whether the node has a baseline for delta encoding:
	// the first report (and the first after any error) requests a full
	// snapshot, steady state requests deltas.
	collect bool
	synced  atomic.Bool

	// follower, when non-nil, switches status RPCs to the delta-encoded
	// stream: steady-state reports carry only changed fields, and any
	// inapplicable delta or transport error forces a full resync. The
	// coordinator serialises rounds, so the follower needs no lock here.
	follower *powerapi.StatusFollower
}

// NewHTTPNode builds a transport for a remote node reachable at addr
// (the node's observability listen address). coord names the granting
// coordinator in lease messages; it may be empty.
func NewHTTPNode(name, addr, coord string) *HTTPNode {
	return &HTTPNode{name: name, coord: coord, client: powerapi.NewClient(addr)}
}

// WithHTTPClient swaps the underlying HTTP client (tests, timeouts).
func (h *HTTPNode) WithHTTPClient(c *http.Client) *HTTPNode {
	h.client.WithHTTPClient(c)
	return h
}

// CollectMetrics makes every report RPC piggyback the node's metrics
// snapshot for fleet aggregation: full on first contact and after any
// transport error, delta-encoded once a baseline exists.
func (h *HTTPNode) CollectMetrics() *HTTPNode {
	h.collect = true
	return h
}

// DeltaStatus switches report RPCs to the delta-encoded status stream
// (see powerapi.StatusFollower): after the first full snapshot the node
// replies with only the fields that changed since the last report,
// which is what keeps a thousand-leaf tier tree's uplink traffic flat.
// Deltas are stateful on the server side, so enable this only when this
// transport is the node's sole status poller.
func (h *HTTPNode) DeltaStatus() *HTTPNode {
	h.follower = &powerapi.StatusFollower{}
	return h
}

func (h *HTTPNode) Name() string { return h.name }

func (h *HTTPNode) Report(ctx context.Context) (Report, error) {
	mode := powerapi.MetricsNone
	full := false
	if h.collect {
		if full = !h.synced.Load(); full {
			mode = powerapi.MetricsFull
		} else {
			mode = powerapi.MetricsDelta
		}
	}
	var st *powerapi.NodeStatus
	var err error
	if h.follower != nil {
		st, err = h.client.FollowStatus(ctx, h.follower, mode)
	} else {
		st, err = h.client.StatusWithMetrics(ctx, mode)
	}
	if err != nil {
		// The reply (and any delta it carried) is lost; resync with a
		// full snapshot on the next report.
		h.synced.Store(false)
		return Report{}, err
	}
	if h.collect {
		h.synced.Store(true)
	}
	return Report{
		Power:       units.Watts(st.PowerWatts),
		Limit:       units.Watts(st.LimitWatts),
		Max:         units.Watts(st.MaxWatts),
		Status:      st,
		MetricsFull: full,
	}, nil
}

func (h *HTTPNode) Grant(ctx context.Context, g Grant) error {
	ack, err := h.client.Lease(ctx, &powerapi.LeaseGrant{
		ID:            h.leaseID.Add(1),
		Coordinator:   h.coord,
		LimitWatts:    float64(g.Limit),
		TTLMS:         g.TTL.Milliseconds(),
		FallbackWatts: float64(g.Fallback),
	})
	if err != nil {
		return err
	}
	if !ack.Applied {
		return fmt.Errorf("cluster: node %s refused grant: %s", h.name, ack.Reason)
	}
	return nil
}
