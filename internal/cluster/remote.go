package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/powerapi"
	"repro/internal/units"
)

// HTTPNode is a Transport over the powerapi wire protocol: the coordinator
// code that drives in-process simulations drives remote powerd daemons
// through this adapter unchanged.
type HTTPNode struct {
	name    string
	coord   string
	client  *powerapi.Client
	leaseID atomic.Uint64

	// collect enables piggybacked metrics snapshots on report RPCs.
	// synced tracks whether the node has a baseline for delta encoding:
	// the first report (and the first after any error) requests a full
	// snapshot, steady state requests deltas.
	collect bool
	synced  atomic.Bool
}

// NewHTTPNode builds a transport for a remote node reachable at addr
// (the node's observability listen address). coord names the granting
// coordinator in lease messages; it may be empty.
func NewHTTPNode(name, addr, coord string) *HTTPNode {
	return &HTTPNode{name: name, coord: coord, client: powerapi.NewClient(addr)}
}

// WithHTTPClient swaps the underlying HTTP client (tests, timeouts).
func (h *HTTPNode) WithHTTPClient(c *http.Client) *HTTPNode {
	h.client.WithHTTPClient(c)
	return h
}

// CollectMetrics makes every report RPC piggyback the node's metrics
// snapshot for fleet aggregation: full on first contact and after any
// transport error, delta-encoded once a baseline exists.
func (h *HTTPNode) CollectMetrics() *HTTPNode {
	h.collect = true
	return h
}

func (h *HTTPNode) Name() string { return h.name }

func (h *HTTPNode) Report(ctx context.Context) (Report, error) {
	mode := powerapi.MetricsNone
	full := false
	if h.collect {
		if full = !h.synced.Load(); full {
			mode = powerapi.MetricsFull
		} else {
			mode = powerapi.MetricsDelta
		}
	}
	st, err := h.client.StatusWithMetrics(ctx, mode)
	if err != nil {
		// The reply (and any delta it carried) is lost; resync with a
		// full snapshot on the next report.
		h.synced.Store(false)
		return Report{}, err
	}
	if h.collect {
		h.synced.Store(true)
	}
	return Report{
		Power:       units.Watts(st.PowerWatts),
		Limit:       units.Watts(st.LimitWatts),
		Max:         units.Watts(st.MaxWatts),
		Status:      st,
		MetricsFull: full,
	}, nil
}

func (h *HTTPNode) Grant(ctx context.Context, g Grant) error {
	ack, err := h.client.Lease(ctx, &powerapi.LeaseGrant{
		ID:            h.leaseID.Add(1),
		Coordinator:   h.coord,
		LimitWatts:    float64(g.Limit),
		TTLMS:         g.TTL.Milliseconds(),
		FallbackWatts: float64(g.Fallback),
	})
	if err != nil {
		return err
	}
	if !ack.Applied {
		return fmt.Errorf("cluster: node %s refused grant: %s", h.name, ack.Reason)
	}
	return nil
}
