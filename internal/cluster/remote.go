package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/powerapi"
	"repro/internal/units"
)

// HTTPNode is a Transport over the powerapi wire protocol: the coordinator
// code that drives in-process simulations drives remote powerd daemons
// through this adapter unchanged.
type HTTPNode struct {
	name    string
	coord   string
	client  *powerapi.Client
	leaseID atomic.Uint64
}

// NewHTTPNode builds a transport for a remote node reachable at addr
// (the node's observability listen address). coord names the granting
// coordinator in lease messages; it may be empty.
func NewHTTPNode(name, addr, coord string) *HTTPNode {
	return &HTTPNode{name: name, coord: coord, client: powerapi.NewClient(addr)}
}

// WithHTTPClient swaps the underlying HTTP client (tests, timeouts).
func (h *HTTPNode) WithHTTPClient(c *http.Client) *HTTPNode {
	h.client.WithHTTPClient(c)
	return h
}

func (h *HTTPNode) Name() string { return h.name }

func (h *HTTPNode) Report(ctx context.Context) (Report, error) {
	st, err := h.client.Status(ctx)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Power: units.Watts(st.PowerWatts),
		Limit: units.Watts(st.LimitWatts),
		Max:   units.Watts(st.MaxWatts),
	}, nil
}

func (h *HTTPNode) Grant(ctx context.Context, g Grant) error {
	ack, err := h.client.Lease(ctx, &powerapi.LeaseGrant{
		ID:            h.leaseID.Add(1),
		Coordinator:   h.coord,
		LimitWatts:    float64(g.Limit),
		TTLMS:         g.TTL.Milliseconds(),
		FallbackWatts: float64(g.Fallback),
	})
	if err != nil {
		return err
	}
	if !ack.Applied {
		return fmt.Errorf("cluster: node %s refused grant: %s", h.name, ack.Reason)
	}
	return nil
}
