package cluster

import (
	"context"
	"time"

	"repro/internal/powerapi"
	"repro/internal/units"
)

// Report is one node's telemetry as the coordinator sees it: enough to bid
// in the room-level water-fill.
type Report struct {
	// Power is the node's instantaneous package power.
	Power units.Watts
	// Limit is the cap the node currently enforces.
	Limit units.Watts
	// Max is the highest cap the node can usefully absorb (the chip's
	// RAPL maximum).
	Max units.Watts
	// Status carries the node's full status frame when the transport has
	// one (networked transports piggyback it on the report RPC). Fleet
	// aggregation reads app shares and metrics from it; the water-fill
	// never does. Nil for transports that only know power numbers.
	Status *powerapi.NodeStatus
	// MetricsFull marks Status.Metrics as a complete snapshot rather
	// than a delta against the previous report.
	MetricsFull bool
}

// Grant is one budget lease the coordinator extends to a node: the cap to
// enforce, how long the promise lasts without renewal, and the safe cap the
// node must revert to when it expires. The sum of outstanding grants (or
// fallbacks, once expired) never exceeds the room budget, so no partition
// can over-commit it.
type Grant struct {
	Limit    units.Watts
	TTL      time.Duration
	Fallback units.Watts
}

// Transport is the coordinator's view of one node. The in-process
// implementation wraps a Node directly; the networked one speaks the
// powerapi wire protocol to a remote powerd. Both are exercised by the same
// coordinator code.
type Transport interface {
	// Name identifies the node in metrics and errors.
	Name() string
	// Report fetches the node's current telemetry.
	Report(ctx context.Context) (Report, error)
	// Grant leases part of the room budget to the node.
	Grant(ctx context.Context, g Grant) error
}

// localTransport adapts an in-process Node: calls go straight into the
// daemon, cannot time out, and ignore lease TTLs (an in-process node cannot
// be partitioned from its coordinator).
type localTransport struct{ n *Node }

func (t localTransport) Name() string { return t.n.Name }

func (t localTransport) Report(context.Context) (Report, error) {
	return Report{
		Power: t.n.M.PackagePower(),
		Limit: t.n.Daemon.Limit(),
		Max:   t.n.M.Chip().RAPLMax,
	}, nil
}

func (t localTransport) Grant(_ context.Context, g Grant) error {
	return t.n.Daemon.SetLimit(g.Limit)
}
