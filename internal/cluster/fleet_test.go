package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/powerapi"
	"repro/internal/units"
)

func obsFor(node string, rpc time.Duration, power, limit float64, st *powerapi.NodeStatus, full bool) NodeObservation {
	return NodeObservation{
		Node: node,
		RPC:  rpc,
		Report: Report{
			Power: units.Watts(power), Limit: units.Watts(limit),
			Status: st, MetricsFull: full,
		},
	}
}

func TestFleetRollups(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFleet(100, reg)

	stA := &powerapi.NodeStatus{
		Node: "a", Policy: "frequency-shares",
		Apps:       []powerapi.AppShare{{Name: "gcc", Watts: 10}, {Name: "cam4", Watts: 5}},
		MetricsRev: 1,
		Metrics: map[string]float64{
			`powerapi_lease_events_total{event="grant"}`:                            1,
			`padpd_build_info{component="powerd",go_version="go1.22",version="v1"}`: 1,
		},
	}
	stB := &powerapi.NodeStatus{
		Node:       "b",
		Apps:       []powerapi.AppShare{{Name: "gcc", Watts: 20}},
		MetricsRev: 1,
		Metrics: map[string]float64{
			`powerapi_lease_events_total{event="grant"}`:                            2,
			`padpd_build_info{component="powerd",go_version="go1.22",version="v2"}`: 1,
		},
	}

	f.ObserveRound(1, 10*time.Millisecond, []NodeObservation{
		obsFor("a", 2*time.Millisecond, 30, 40, stA, true),
		obsFor("b", 3*time.Millisecond, 25, 35, stB, true),
		{Node: "c", Err: fmt.Errorf("connection refused")},
	})

	snap := f.Snapshot()
	if snap.Round != 1 || snap.BudgetWatts != 100 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if snap.TotalPowerWatts != 55 {
		t.Errorf("total power = %v, want 55", snap.TotalPowerWatts)
	}
	if len(snap.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(snap.Nodes))
	}
	if snap.Nodes[2].Name != "c" || snap.Nodes[2].MissedRounds != 1 {
		t.Errorf("failed node row = %+v", snap.Nodes[2])
	}
	// Apps are summed across nodes and sorted by watts.
	if len(snap.Apps) != 2 || snap.Apps[0].Name != "gcc" || snap.Apps[0].Watts != 30 || snap.Apps[0].Nodes != 2 {
		t.Errorf("apps = %+v", snap.Apps)
	}
	if snap.LeaseEvents["grant"] != 3 {
		t.Errorf("lease events = %v", snap.LeaseEvents)
	}
	// Two distinct build_info series → version skew.
	if len(snap.Versions) != 2 || !snap.MixedVersions {
		t.Errorf("versions = %v mixed=%v", snap.Versions, snap.MixedVersions)
	}
	if snap.RoundLatency.Samples != 1 || snap.RoundLatency.MaxMS != 10 {
		t.Errorf("round latency = %+v", snap.RoundLatency)
	}

	// Rollup gauges on the registry agree.
	vals := reg.Values()
	if vals["fleet_power_watts"] != 55 || vals["fleet_budget_watts"] != 100 {
		t.Errorf("gauges = power %v budget %v", vals["fleet_power_watts"], vals["fleet_budget_watts"])
	}
	if vals["fleet_nodes"] != 3 || vals["fleet_nodes_reporting"] != 2 {
		t.Errorf("node gauges = %v / %v", vals["fleet_nodes"], vals["fleet_nodes_reporting"])
	}
	if vals[`fleet_app_watts{app="gcc"}`] != 30 {
		t.Errorf("app gauge = %v", vals[`fleet_app_watts{app="gcc"}`])
	}
}

func TestFleetDeltaMergeAndStragglers(t *testing.T) {
	f := NewFleet(100, nil)

	full := &powerapi.NodeStatus{Node: "a", MetricsRev: 1,
		Metrics: map[string]float64{"x": 1, "y": 2}}
	delta := &powerapi.NodeStatus{Node: "a", MetricsRev: 2,
		Metrics: map[string]float64{"y": 5}}

	mk := func(rpcA time.Duration, st *powerapi.NodeStatus, isFull bool) []NodeObservation {
		return []NodeObservation{
			obsFor("a", rpcA, 10, 20, st, isFull),
			obsFor("b", 1*time.Millisecond, 10, 20, nil, false),
			obsFor("c", 1*time.Millisecond, 10, 20, nil, false),
		}
	}
	// Round 1: full snapshot, node a slow enough to be the straggler
	// (2× the 1 ms median and over the 5 ms absolute floor).
	f.ObserveRound(1, 50*time.Millisecond, mk(40*time.Millisecond, full, true))
	// Round 2: delta overlays y, keeps x; everyone fast, no straggler.
	f.ObserveRound(2, 5*time.Millisecond, mk(1*time.Millisecond, delta, false))

	snap := f.Snapshot()
	if len(snap.Stragglers) != 1 || snap.Stragglers[0].Node != "a" || snap.Stragglers[0].Rounds != 1 {
		t.Fatalf("stragglers = %+v", snap.Stragglers)
	}
	if snap.Nodes[0].MetricsRev != 2 {
		t.Errorf("metrics rev = %d, want 2", snap.Nodes[0].MetricsRev)
	}
	// The delta must have overlaid y without dropping x: x still counts
	// toward lease/version scans. Check via the internal merged map.
	f.mu.Lock()
	vals := f.nodes["a"].vals
	f.mu.Unlock()
	if vals["x"] != 1 || vals["y"] != 5 {
		t.Errorf("merged metrics = %v, want x=1 y=5", vals)
	}

	// A later full snapshot replaces: stale series disappear.
	f.ObserveRound(3, 5*time.Millisecond, mk(1*time.Millisecond,
		&powerapi.NodeStatus{Node: "a", MetricsRev: 3, Metrics: map[string]float64{"y": 7}}, true))
	f.mu.Lock()
	vals = f.nodes["a"].vals
	f.mu.Unlock()
	if _, ok := vals["x"]; ok || vals["y"] != 7 {
		t.Errorf("post-full metrics = %v, want only y=7", vals)
	}
}

func TestFleetNilSafe(t *testing.T) {
	var f *Fleet
	f.ObserveRound(1, time.Millisecond, []NodeObservation{{Node: "a"}})
	if snap := f.Snapshot(); snap.Round != 0 || snap.Nodes != nil {
		t.Fatalf("nil fleet snapshot = %+v", snap)
	}
}
