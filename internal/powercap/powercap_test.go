package powercap

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func busyMachine(t *testing.T) *sim.Machine {
	t.Helper()
	m, err := sim.New(platform.Skylake())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := m.Pin(workload.NewInstance(workload.MustByName("cactusBSSN")), i); err != nil {
			t.Fatal(err)
		}
		if err := m.SetRequest(i, m.Chip().Freq.Max()); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func writeFile(t *testing.T, z *Zone, name, val string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(z.Dir(), name), []byte(val+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, z *Zone, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(z.Dir(), name))
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(string(b))
}

func TestAttachCreatesSysfsTree(t *testing.T) {
	m := busyMachine(t)
	z, err := Attach(m, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"name", "enabled", "energy_uj", "max_energy_range_uj",
		"constraint_0_name", "constraint_0_power_limit_uw", "constraint_0_max_power_uw",
	} {
		if _, err := os.Stat(filepath.Join(z.Dir(), name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	if got := readFile(t, z, "name"); got != "package-0" {
		t.Errorf("name = %q", got)
	}
	if got := readFile(t, z, "constraint_0_max_power_uw"); got != "85000000" {
		t.Errorf("max power = %q, want 85000000", got)
	}
}

func TestAttachRejectsChipsWithoutRAPL(t *testing.T) {
	m, err := sim.New(platform.Ryzen())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(m, t.TempDir(), 0); err == nil {
		t.Error("Ryzen accepted")
	}
}

// The shell workflow: echo a limit into the constraint file, enable the
// zone, and the machine throttles.
func TestLimitWriteThrottlesMachine(t *testing.T) {
	m := busyMachine(t)
	z, err := Attach(m, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	unconstrained := m.PackagePower()
	if unconstrained < 60 {
		t.Fatalf("workload too light: %v", unconstrained)
	}
	writeFile(t, z, "constraint_0_power_limit_uw", "50000000") // 50 W
	writeFile(t, z, "enabled", "1")
	m.Run(2 * time.Second)
	if got := m.PackagePower(); got > 50*1.03 {
		t.Errorf("power %v exceeds the 50 W sysfs limit", got)
	}
	// Disabling restores unconstrained operation.
	writeFile(t, z, "enabled", "0")
	m.Run(2 * time.Second)
	if got := m.PackagePower(); got < unconstrained*0.95 {
		t.Errorf("power %v did not recover after disable (was %v)", got, unconstrained)
	}
}

func TestEnergyCounterPublishes(t *testing.T) {
	m := busyMachine(t)
	z, err := Attach(m, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(500 * time.Millisecond)
	if err := z.Sync(); err != nil {
		t.Fatal(err)
	}
	uj, err := strconv.ParseUint(readFile(t, z, "energy_uj"), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	wantUJ := uint64(float64(m.PackageEnergy()) * 1e6)
	diff := int64(uj) - int64(wantUJ)
	if diff < -1e6 || diff > 1e6 { // within a joule
		t.Errorf("energy_uj = %d, machine = %d", uj, wantUJ)
	}
	if uj >= maxEnergyRangeUJ {
		t.Errorf("energy_uj %d beyond wrap range", uj)
	}
}

// Bad operator writes must not crash the poller or corrupt the limit.
func TestGarbageWriteKeepsPreviousLimit(t *testing.T) {
	m := busyMachine(t)
	z, err := Attach(m, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, z, "constraint_0_power_limit_uw", "50000000")
	writeFile(t, z, "enabled", "1")
	m.Run(2 * time.Second)
	writeFile(t, z, "constraint_0_power_limit_uw", "not-a-number")
	m.Run(time.Second) // poller hits the bad value and must keep going
	if got := m.PackagePower(); got > 50*1.03 {
		t.Errorf("garbage write disturbed the limit: %v", got)
	}
	if got := m.Limiter().Limit(); got != 50 {
		t.Errorf("limiter limit = %v, want 50 W retained", got)
	}
}

// Limits outside the chip's range clamp rather than program nonsense.
func TestLimitClampsToChipRange(t *testing.T) {
	m := busyMachine(t)
	z, err := Attach(m, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, z, "constraint_0_power_limit_uw", "1000000") // 1 W, below RAPLMin
	writeFile(t, z, "enabled", "1")
	if err := z.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := m.Limiter().Limit(); got != m.Chip().RAPLMin {
		t.Errorf("limit = %v, want clamped to %v", got, m.Chip().RAPLMin)
	}
}
