// Package powercap models the Linux Power Capping Framework the paper
// references (kernel.org powercap documentation): a sysfs-shaped directory
// tree through which operators read package energy and write power limits
// — the userspace face of RAPL on Intel systems.
//
// The tree mirrors /sys/class/powercap/intel-rapl:0:
//
//	<root>/intel-rapl:0/
//	    name                          "package-0"
//	    enabled                       "1" / "0"
//	    energy_uj                     cumulative energy, microjoules, wraps
//	    max_energy_range_uj           wrap range
//	    constraint_0_name             "long_term"
//	    constraint_0_power_limit_uw   limit, microwatts (writable)
//	    constraint_0_max_power_uw     the chip's maximum programmable limit
//
// A Zone attached to a simulated machine publishes energy into the tree and
// applies limit writes to the machine's RAPL limiter on a polling interval,
// so shell-style "echo 50000000 > constraint_0_power_limit_uw" workflows
// work against the simulator.
package powercap

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// maxEnergyRangeUJ is the wrap range of energy_uj (the value Skylake
// exposes is on this order).
const maxEnergyRangeUJ uint64 = 262143328850

// Zone is one package power-capping zone bound to a simulated machine.
type Zone struct {
	m    *sim.Machine
	dir  string
	acc  time.Duration
	intv time.Duration

	lastLimit units.Watts
}

// Attach creates the sysfs-style tree under root and wires it to the
// machine: energy is published and limit writes are applied every interval
// of virtual time (default 10 ms). The chip must expose a hardware RAPL
// limiter (the framework is the kernel driver for exactly that hardware).
func Attach(m *sim.Machine, root string, interval time.Duration) (*Zone, error) {
	chip := m.Chip()
	if !chip.HardwareRAPLLimit {
		return nil, fmt.Errorf("powercap: %s has no documented RAPL limiter", chip.Name)
	}
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	dir := filepath.Join(root, "intel-rapl:0")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("powercap: creating zone dir: %w", err)
	}
	z := &Zone{m: m, dir: dir, intv: interval}
	init := map[string]string{
		"name":                        "package-0",
		"enabled":                     "0",
		"energy_uj":                   "0",
		"max_energy_range_uj":         strconv.FormatUint(maxEnergyRangeUJ, 10),
		"constraint_0_name":           "long_term",
		"constraint_0_power_limit_uw": strconv.FormatInt(int64(float64(chip.RAPLMax)*1e6), 10),
		"constraint_0_max_power_uw":   strconv.FormatInt(int64(float64(chip.RAPLMax)*1e6), 10),
	}
	for name, val := range init {
		if err := z.write(name, val); err != nil {
			return nil, err
		}
	}
	m.OnTick(z.tick)
	return z, nil
}

// Dir returns the zone directory.
func (z *Zone) Dir() string { return z.dir }

func (z *Zone) write(name, val string) error {
	if err := os.WriteFile(filepath.Join(z.dir, name), []byte(val+"\n"), 0o644); err != nil {
		return fmt.Errorf("powercap: writing %s: %w", name, err)
	}
	return nil
}

func (z *Zone) readUint(name string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(z.dir, name))
	if err != nil {
		return 0, fmt.Errorf("powercap: reading %s: %w", name, err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("powercap: parsing %s: %w", name, err)
	}
	return v, nil
}

// Sync publishes energy and applies the current enabled/limit files to the
// machine. It is called automatically on the polling interval; exposed for
// deterministic tests and manual flushes. Unparseable operator writes leave
// the previous limit in place (as the kernel rejects bad writes).
func (z *Zone) Sync() error {
	uj := uint64(float64(z.m.PackageEnergy())*1e6) % maxEnergyRangeUJ
	if err := z.write("energy_uj", strconv.FormatUint(uj, 10)); err != nil {
		return err
	}
	enabled, err := z.readUint("enabled")
	if err != nil {
		return err
	}
	if enabled == 0 {
		if z.lastLimit != 0 {
			z.m.SetPowerLimit(0)
			z.lastLimit = 0
		}
		return nil
	}
	uw, err := z.readUint("constraint_0_power_limit_uw")
	if err != nil {
		return err
	}
	chip := z.m.Chip()
	limit := units.Watts(float64(uw)/1e6).Clamp(chip.RAPLMin, chip.RAPLMax)
	if limit != z.lastLimit {
		z.m.SetPowerLimit(limit)
		z.lastLimit = limit
	}
	return nil
}

func (z *Zone) tick(dt time.Duration) {
	z.acc += dt
	if z.acc < z.intv {
		return
	}
	z.acc = 0
	// Filesystem hiccups mid-run leave the previous limit in effect; the
	// next poll retries.
	_ = z.Sync()
}
