package cpu

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// CState describes one core idle state (the paper's Section 2.1 "Core
// Idling"): deeper states draw less residual power but "take longer to
// enter and exit (1-200 µs)", so entering one only pays off when the core
// will stay idle past its target residency.
type CState struct {
	Name string

	// Power is the core's residual draw while resident in the state.
	Power units.Watts

	// ExitLatency is the wake cost: time after an interrupt during which
	// the core burns active power but retires nothing.
	ExitLatency time.Duration

	// TargetResidency is the minimum idle length for which entering the
	// state is worthwhile (Linux cpuidle's target_residency).
	TargetResidency time.Duration
}

// ValidateCStates checks a table ordered shallow to deep: power strictly
// decreasing, latencies and residencies non-decreasing.
func ValidateCStates(table []CState) error {
	for i, s := range table {
		if s.Name == "" {
			return fmt.Errorf("cpu: C-state %d has no name", i)
		}
		if s.Power < 0 || s.ExitLatency < 0 || s.TargetResidency < 0 {
			return fmt.Errorf("cpu: C-state %s has negative parameter", s.Name)
		}
		if i == 0 {
			continue
		}
		prev := table[i-1]
		if s.Power >= prev.Power {
			return fmt.Errorf("cpu: C-state %s power %v not below %s's %v",
				s.Name, s.Power, prev.Name, prev.Power)
		}
		if s.ExitLatency < prev.ExitLatency || s.TargetResidency < prev.TargetResidency {
			return fmt.Errorf("cpu: C-state %s latencies regress below %s", s.Name, prev.Name)
		}
	}
	return nil
}

// SelectCState picks the deepest state whose target residency fits the
// predicted idle length — the menu-governor decision. It returns the index
// into the table, or -1 for an empty table.
func SelectCState(table []CState, predictedIdle time.Duration) int {
	best := -1
	for i, s := range table {
		if s.TargetResidency <= predictedIdle {
			best = i
		}
	}
	if best < 0 && len(table) > 0 {
		best = 0 // too short for anything: shallowest state
	}
	return best
}
