package cpu

import (
	"testing"
	"time"
)

func testTable() []CState {
	return []CState{
		{Name: "C1", Power: 0.8, ExitLatency: 2 * time.Microsecond, TargetResidency: 5 * time.Microsecond},
		{Name: "C1E", Power: 0.4, ExitLatency: 10 * time.Microsecond, TargetResidency: 25 * time.Microsecond},
		{Name: "C6", Power: 0.1, ExitLatency: 133 * time.Microsecond, TargetResidency: 400 * time.Microsecond},
	}
}

func TestValidateCStates(t *testing.T) {
	if err := ValidateCStates(testTable()); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	if err := ValidateCStates(nil); err != nil {
		t.Errorf("empty table rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func([]CState)
	}{
		{"unnamed", func(tb []CState) { tb[1].Name = "" }},
		{"negative power", func(tb []CState) { tb[0].Power = -1 }},
		{"power not decreasing", func(tb []CState) { tb[2].Power = 0.9 }},
		{"latency regress", func(tb []CState) { tb[2].ExitLatency = time.Microsecond }},
		{"residency regress", func(tb []CState) { tb[2].TargetResidency = time.Microsecond }},
	}
	for _, c := range cases {
		tb := testTable()
		c.mut(tb)
		if err := ValidateCStates(tb); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestSelectCState(t *testing.T) {
	tb := testTable()
	cases := []struct {
		idle time.Duration
		want int
	}{
		{0, 0},                     // too short for anything: shallowest
		{3 * time.Microsecond, 0},  // below C1's target still picks C1
		{10 * time.Microsecond, 0}, // C1 fits, C1E does not
		{30 * time.Microsecond, 1}, // C1E fits
		{time.Millisecond, 2},      // C6 fits
		{time.Hour, 2},             // saturates at the deepest
	}
	for _, c := range cases {
		if got := SelectCState(tb, c.idle); got != c.want {
			t.Errorf("SelectCState(%v) = %d, want %d", c.idle, got, c.want)
		}
	}
	if got := SelectCState(nil, time.Second); got != -1 {
		t.Errorf("empty table select = %d, want -1", got)
	}
}
