package cpu

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func testSpec() FreqSpec {
	return FreqSpec{
		Min:  800 * units.MHz,
		Nom:  2200 * units.MHz,
		Step: 100 * units.MHz,
		Turbo: []TurboBin{
			{MaxActive: 2, Normal: 3000 * units.MHz, AVX: 1900 * units.MHz},
			{MaxActive: 4, Normal: 2700 * units.MHz, AVX: 1800 * units.MHz},
			{MaxActive: 10, Normal: 2400 * units.MHz, AVX: 1700 * units.MHz},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*FreqSpec)
	}{
		{"min above nom", func(s *FreqSpec) { s.Min = 3 * units.GHz }},
		{"zero step", func(s *FreqSpec) { s.Step = 0 }},
		{"non-ascending bins", func(s *FreqSpec) { s.Turbo[1].MaxActive = 1 }},
		{"turbo below nom", func(s *FreqSpec) { s.Turbo[0].Normal = 1 * units.GHz }},
		{"avx above normal", func(s *FreqSpec) { s.Turbo[0].AVX = 4 * units.GHz }},
	}
	for _, c := range cases {
		s := testSpec()
		c.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestMaxAndCeiling(t *testing.T) {
	s := testSpec()
	if got := s.Max(); got != 3000*units.MHz {
		t.Errorf("Max = %v", got)
	}
	cases := []struct {
		active int
		avx    bool
		want   units.Hertz
	}{
		{1, false, 3000 * units.MHz},
		{2, false, 3000 * units.MHz},
		{3, false, 2700 * units.MHz},
		{10, false, 2400 * units.MHz},
		{99, false, 2400 * units.MHz}, // saturates at last bin
		{1, true, 1900 * units.MHz},
		{10, true, 1700 * units.MHz},
	}
	for _, c := range cases {
		if got := s.Ceiling(c.active, c.avx); got != c.want {
			t.Errorf("Ceiling(%d, %v) = %v, want %v", c.active, c.avx, got, c.want)
		}
	}
}

func TestCeilingNoTurbo(t *testing.T) {
	s := testSpec()
	s.Turbo = nil
	if got := s.Ceiling(1, false); got != s.Nom {
		t.Errorf("Ceiling without turbo = %v, want %v", got, s.Nom)
	}
	if got := s.Max(); got != s.Nom {
		t.Errorf("Max without turbo = %v, want %v", got, s.Nom)
	}
}

func TestQuantize(t *testing.T) {
	s := testSpec()
	if got := s.Quantize(2250 * units.MHz); got != 2200*units.MHz {
		t.Errorf("Quantize = %v", got)
	}
	if got := s.Quantize(100 * units.MHz); got != s.Min {
		t.Errorf("Quantize below min = %v", got)
	}
	if got := s.Quantize(9 * units.GHz); got != s.Max() {
		t.Errorf("Quantize above max = %v", got)
	}
}

func TestLevels(t *testing.T) {
	s := testSpec()
	lv := s.Levels()
	if lv[0] != s.Min || lv[len(lv)-1] != s.Max() {
		t.Errorf("Levels endpoints: %v .. %v", lv[0], lv[len(lv)-1])
	}
	want := int((s.Max()-s.Min)/s.Step) + 1
	if len(lv) != want {
		t.Errorf("len(Levels) = %d, want %d", len(lv), want)
	}
	for i := 1; i < len(lv); i++ {
		if lv[i]-lv[i-1] != s.Step {
			t.Fatalf("Levels not uniform at %d: %v -> %v", i, lv[i-1], lv[i])
		}
	}
}

func TestEffectiveResolution(t *testing.T) {
	s := testSpec()
	// Unclamped non-AVX single core: full turbo.
	if got := s.Effective(3*units.GHz, 0, 1, false); got != 3000*units.MHz {
		t.Errorf("turbo grant = %v", got)
	}
	// All cores active: capped at the all-core bin.
	if got := s.Effective(3*units.GHz, 0, 10, false); got != 2400*units.MHz {
		t.Errorf("all-core = %v", got)
	}
	// AVX licence binds harder.
	if got := s.Effective(3*units.GHz, 0, 10, true); got != 1700*units.MHz {
		t.Errorf("avx licence = %v", got)
	}
	// RAPL clamp binds below everything.
	if got := s.Effective(3*units.GHz, 1500*units.MHz, 1, false); got != 1500*units.MHz {
		t.Errorf("clamp = %v", got)
	}
	// Clamp of zero means unclamped.
	if got := s.Effective(2*units.GHz, 0, 10, false); got != 2*units.GHz {
		t.Errorf("zero clamp = %v", got)
	}
	// Requests below min are floored.
	if got := s.Effective(100*units.MHz, 0, 1, false); got != s.Min {
		t.Errorf("floor = %v", got)
	}
}

// Property: effective frequency is always a valid quantised level and never
// exceeds any of its inputs (request, clamp, ceiling).
func TestEffectiveProperties(t *testing.T) {
	s := testSpec()
	prop := func(reqRaw, clampRaw uint16, active uint8, avx bool) bool {
		req := units.Hertz(reqRaw) * units.MHz / 10
		clamp := units.Hertz(clampRaw) * units.MHz / 10
		n := int(active%10) + 1
		eff := s.Effective(req, clamp, n, avx)
		if eff < s.Min || eff > s.Max() {
			return false
		}
		mult := float64(eff) / float64(s.Step)
		if math.Abs(mult-math.Round(mult)) > 1e-9 {
			return false
		}
		ceil := s.Ceiling(n, avx)
		if eff > ceil {
			return false
		}
		if clamp >= s.Min && eff > clamp {
			return false
		}
		if req >= s.Min && eff > req {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCoreAccounting(t *testing.T) {
	s := testSpec()
	c := NewCore(3, 2*units.GHz)
	eff := 2 * units.GHz
	c.Account(eff, s.Nom, time.Second, 1.5e9, 4.2)
	cnt := c.Counters()
	if cnt.APERF != 2e9 {
		t.Errorf("APERF = %g", cnt.APERF)
	}
	if cnt.MPERF != 2.2e9 {
		t.Errorf("MPERF = %g", cnt.MPERF)
	}
	if cnt.Instr != 1.5e9 || cnt.Energy != 4.2 || cnt.C0Time != time.Second {
		t.Errorf("counters = %+v", cnt)
	}
}

func TestIdleCoreAccumulatesOnlyEnergy(t *testing.T) {
	c := NewCore(0, 2*units.GHz)
	c.Idle = true
	c.Account(2*units.GHz, 2200*units.MHz, time.Second, 0, 0.05)
	cnt := c.Counters()
	if cnt.APERF != 0 || cnt.MPERF != 0 || cnt.C0Time != 0 {
		t.Errorf("idle core accumulated C0 counters: %+v", cnt)
	}
	if cnt.Energy != 0.05 {
		t.Errorf("idle energy = %v", cnt.Energy)
	}
}

func TestAccountIgnoresNonPositiveDt(t *testing.T) {
	c := NewCore(0, 2*units.GHz)
	c.Account(2*units.GHz, 2200*units.MHz, 0, 1e9, 1)
	if cnt := c.Counters(); cnt.Instr != 0 || cnt.Energy != 0 {
		t.Errorf("zero-dt step charged: %+v", cnt)
	}
}

func TestActiveFreqDerivation(t *testing.T) {
	nom := 2200 * units.MHz
	c := NewCore(0, 0)
	prev := c.Counters()
	// Run 1s at 1.1 GHz: APERF/MPERF = 0.5 -> derived 1.1 GHz.
	c.Account(1100*units.MHz, nom, time.Second, 5e8, 2)
	cur := c.Counters()
	if got := ActiveFreq(prev, cur, nom); math.Abs(float64(got-1100*units.MHz)) > 1 {
		t.Errorf("ActiveFreq = %v, want 1.1 GHz", got)
	}
	if got := IPSBetween(prev, cur, time.Second); got != 5e8 {
		t.Errorf("IPSBetween = %g", got)
	}
	if got := PowerBetween(prev, cur, time.Second); got != 2 {
		t.Errorf("PowerBetween = %v", got)
	}
}

func TestActiveFreqNoC0(t *testing.T) {
	var a, b Counters
	if got := ActiveFreq(a, b, 2*units.GHz); got != 0 {
		t.Errorf("ActiveFreq with no C0 time = %v, want 0", got)
	}
	if got := IPSBetween(a, b, 0); got != 0 {
		t.Errorf("IPSBetween dt=0 = %v", got)
	}
}

// Property: ActiveFreq recovers the true frequency when the interval runs at
// a single fixed frequency.
func TestActiveFreqRecoversFixed(t *testing.T) {
	nom := 2200 * units.MHz
	prop := func(fRaw uint8, msRaw uint16) bool {
		f := (800 + units.Hertz(fRaw%23)*100) * units.MHz
		dt := time.Duration(int(msRaw)%5000+1) * time.Millisecond
		c := NewCore(0, f)
		prev := c.Counters()
		c.Account(f, nom, dt, 0, 0)
		got := ActiveFreq(prev, c.Counters(), nom)
		return math.Abs(float64(got-f)) < 1e3
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
