// Package cpu models the per-core frequency machinery of a modern x86
// processor: discrete P-states, per-core DVFS with vendor-specific
// quantisation, opportunistic scaling (TurboBoost / Precision Boost + XFR)
// granted by active-core count, AVX frequency licences, C-state idling, and
// the architectural counters (APERF, MPERF, instructions retired, energy)
// that supervisory software samples.
//
// A Core holds only *requests* and *counters*; the effective frequency each
// instant is resolved by FreqSpec.Effective from the request, the power
// limiter's clamp, the AVX licence, and the turbo grant — mirroring how real
// hardware arbitrates between the OS's P-state request and its own limits.
package cpu

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// TurboBin is one row of a turbo table: with at most MaxActive cores in C0,
// cores may run up to Normal (non-AVX) or AVX (AVX licence) frequency.
type TurboBin struct {
	MaxActive int
	Normal    units.Hertz
	AVX       units.Hertz
}

// FreqSpec describes a chip's frequency domain.
type FreqSpec struct {
	Min  units.Hertz // lowest P-state frequency
	Nom  units.Hertz // nominal (guaranteed all-core, non-AVX) frequency
	Step units.Hertz // P-state quantisation (100 MHz Intel, 25 MHz Ryzen)

	// Turbo is the opportunistic-scaling table, sorted by ascending
	// MaxActive. The last bin must cover the full core count; its Normal
	// value is the all-core ceiling. An empty table disables turbo: the
	// ceiling is Nom at any occupancy.
	Turbo []TurboBin
}

// Validate reports whether the spec is well-formed.
func (s FreqSpec) Validate() error {
	if !(s.Min > 0 && s.Min < s.Nom) {
		return fmt.Errorf("cpu: Min %v must be positive and below Nom %v", s.Min, s.Nom)
	}
	if s.Step <= 0 {
		return fmt.Errorf("cpu: Step must be positive, got %v", s.Step)
	}
	prev := 0
	for i, b := range s.Turbo {
		if b.MaxActive <= prev {
			return fmt.Errorf("cpu: turbo bin %d not ascending by MaxActive", i)
		}
		prev = b.MaxActive
		if b.Normal < s.Nom {
			return fmt.Errorf("cpu: turbo bin %d normal ceiling %v below nominal %v", i, b.Normal, s.Nom)
		}
		if b.AVX <= 0 || b.AVX > b.Normal {
			return fmt.Errorf("cpu: turbo bin %d AVX ceiling %v invalid", i, b.AVX)
		}
	}
	return nil
}

// Max returns the chip's absolute maximum frequency (the single-core turbo
// ceiling), or Nom without a turbo table.
func (s FreqSpec) Max() units.Hertz {
	if len(s.Turbo) == 0 {
		return s.Nom
	}
	return s.Turbo[0].Normal
}

// Ceiling returns the highest frequency grantable with activeCores cores in
// C0, for AVX or non-AVX code. Occupancy beyond the last bin uses the last
// bin (hardware treats the table as saturating).
func (s FreqSpec) Ceiling(activeCores int, avx bool) units.Hertz {
	if len(s.Turbo) == 0 {
		return s.Nom
	}
	bin := s.Turbo[len(s.Turbo)-1]
	for _, b := range s.Turbo {
		if activeCores <= b.MaxActive {
			bin = b
			break
		}
	}
	if avx {
		return bin.AVX
	}
	return bin.Normal
}

// Quantize snaps f to a valid P-state frequency within [Min, Max].
func (s FreqSpec) Quantize(f units.Hertz) units.Hertz {
	return f.Clamp(s.Min, s.Max()).Quantize(s.Step)
}

// Levels enumerates every valid frequency from Min to Max inclusive.
func (s FreqSpec) Levels() []units.Hertz {
	var out []units.Hertz
	for f := s.Min; f <= s.Max()+s.Step/2; f += s.Step {
		out = append(out, f)
	}
	return out
}

// Effective resolves the frequency a core actually runs at: the minimum of
// its P-state request, the power limiter's clamp, the AVX licence, and the
// turbo grant for the current occupancy — floored at Min and quantised.
// This is the paper's observation stack: RAPL clamps, AVX licences cap
// (cam4's 1667 MHz vs gcc's 2360 MHz in Figure 1), and turbo headroom
// appears only at low occupancy.
func (s FreqSpec) Effective(request, clamp units.Hertz, activeCores int, avx bool) units.Hertz {
	f := request
	if clamp > 0 && clamp < f {
		f = clamp
	}
	if c := s.Ceiling(activeCores, avx); c < f {
		f = c
	}
	return s.Quantize(f)
}

// Core is one hardware thread's control state and counters. The zero value
// is not ready to use; call NewCore.
type Core struct {
	ID int

	// Request is the OS-requested P-state frequency (IA32_PERF_CTL).
	Request units.Hertz

	// Clamp is the power limiter's per-core frequency ceiling; zero means
	// unclamped.
	Clamp units.Hertz

	// Idle parks the core in a deep C-state: it executes nothing and
	// draws only residual power.
	Idle bool

	// Architectural counters, monotonically increasing.
	aperf  float64      // cycles accumulated at effective frequency while in C0
	mperf  float64      // cycles at nominal frequency while in C0
	instr  float64      // instructions retired
	energy units.Joules // core energy (per-core RAPL domain)
	c0Time time.Duration
}

// NewCore returns a core with the given ID requesting frequency f.
func NewCore(id int, f units.Hertz) *Core {
	return &Core{ID: id, Request: f}
}

// Account charges one simulation step to the core's counters: the core ran
// at eff (0 if idle) for dt at nominal frequency nom, retiring instr
// instructions and consuming energy.
func (c *Core) Account(eff, nom units.Hertz, dt time.Duration, instr float64, energy units.Joules) {
	if dt <= 0 {
		return
	}
	if !c.Idle && eff > 0 {
		c.aperf += eff.Cycles(dt)
		c.mperf += nom.Cycles(dt)
		c.c0Time += dt
	}
	c.instr += instr
	c.energy += energy
}

// Counters is a snapshot of a core's architectural counters.
type Counters struct {
	APERF  float64
	MPERF  float64
	Instr  float64
	Energy units.Joules
	C0Time time.Duration
}

// Counters returns the core's current counter snapshot.
func (c *Core) Counters() Counters {
	return Counters{APERF: c.aperf, MPERF: c.mperf, Instr: c.instr, Energy: c.energy, C0Time: c.c0Time}
}

// ActiveFreq derives the average active (C0) frequency between two counter
// snapshots, the way turbostat does: nom * ΔAPERF/ΔMPERF. It reports zero
// if the core never entered C0 in the interval.
func ActiveFreq(prev, cur Counters, nom units.Hertz) units.Hertz {
	dm := cur.MPERF - prev.MPERF
	if dm <= 0 {
		return 0
	}
	return nom * units.Hertz((cur.APERF-prev.APERF)/dm)
}

// IPSBetween derives instructions per second between two snapshots over dt.
func IPSBetween(prev, cur Counters, dt time.Duration) float64 {
	s := dt.Seconds()
	if s <= 0 {
		return 0
	}
	return (cur.Instr - prev.Instr) / s
}

// PowerBetween derives average power between two snapshots over dt.
func PowerBetween(prev, cur Counters, dt time.Duration) units.Watts {
	return (cur.Energy - prev.Energy).Power(dt)
}
