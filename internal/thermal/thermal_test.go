package thermal

import (
	"math"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(25, 0.5, 60) // tau = 30 s
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(25, 0, 60); err == nil {
		t.Error("zero resistance accepted")
	}
	if _, err := NewModel(25, 0.5, -1); err == nil {
		t.Error("negative capacitance accepted")
	}
}

func TestSteadyStateFormula(t *testing.T) {
	m := testModel(t)
	if got := m.SteadyState(80); got != 25+0.5*80 {
		t.Errorf("SteadyState(80) = %g", got)
	}
	if got := m.TimeConstant(); got != 30*time.Second {
		t.Errorf("TimeConstant = %v", got)
	}
}

func TestStepConvergesToSteadyState(t *testing.T) {
	m := testModel(t)
	for i := 0; i < 3000; i++ { // 300 s = 10 tau
		m.Step(80, 100*time.Millisecond)
	}
	want := m.SteadyState(80)
	if math.Abs(m.Temperature()-want) > 0.01 {
		t.Errorf("settled at %g, want %g", m.Temperature(), want)
	}
}

func TestStepTimeConstant(t *testing.T) {
	m := testModel(t)
	// After exactly one time constant the response covers 1-1/e of the
	// step.
	m.Step(80, m.TimeConstant())
	want := 25 + (m.SteadyState(80)-25)*(1-math.Exp(-1))
	if math.Abs(m.Temperature()-want) > 0.01 {
		t.Errorf("after tau: %g, want %g", m.Temperature(), want)
	}
	// Step integration must be step-size independent (exact ODE solution).
	m2 := testModel(t)
	for i := 0; i < 3000; i++ {
		m2.Step(80, m.TimeConstant()/3000)
	}
	if math.Abs(m.Temperature()-m2.Temperature()) > 0.01 {
		t.Errorf("step-size dependence: %g vs %g", m.Temperature(), m2.Temperature())
	}
}

func TestStepIgnoresNonPositiveDt(t *testing.T) {
	m := testModel(t)
	m.Step(80, 0)
	m.Step(80, -time.Second)
	if m.Temperature() != 25 {
		t.Errorf("temperature moved: %g", m.Temperature())
	}
}

func TestHugeStepSaturates(t *testing.T) {
	m := testModel(t)
	m.Step(80, 24*time.Hour)
	if math.Abs(m.Temperature()-m.SteadyState(80)) > 1e-9 {
		t.Errorf("huge step did not saturate: %g", m.Temperature())
	}
}

func burnMachine(t *testing.T) *sim.Machine {
	t.Helper()
	m, err := sim.New(platform.Skylake())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := m.Pin(workload.NewInstance(workload.MustByName("cactusBSSN")), i); err != nil {
			t.Fatal(err)
		}
		if err := m.SetRequest(i, m.Chip().Freq.Max()); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestAttachValidation(t *testing.T) {
	m := burnMachine(t)
	model := testModel(t)
	if _, err := Attach(m, nil, Config{TripTemp: 70, TargetTemp: 65}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Attach(m, model, Config{TripTemp: 60, TargetTemp: 65}); err == nil {
		t.Error("trip below target accepted")
	}
	if _, err := Attach(m, model, Config{TripTemp: 70, TargetTemp: 20}); err == nil {
		t.Error("target below ambient accepted")
	}
}

// The thermald scenario: a sustained high-power workload heats past the
// trip point; the daemon engages RAPL and regulates the die to the target.
func TestDaemonCapsTemperature(t *testing.T) {
	m := burnMachine(t)
	model := testModel(t)
	d, err := Attach(m, model, Config{TripTemp: 58, TargetTemp: 55})
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained, cactusBSSN on all cores draws ~75 W: steady state
	// would be ~62 °C, above the 58 °C trip.
	m.Run(5 * time.Minute)
	if d.Trips() == 0 {
		t.Fatal("trip never fired")
	}
	if !d.Engaged() {
		t.Error("mitigation not engaged under sustained load")
	}
	if got := d.Temperature(); got > 58.5 {
		t.Errorf("temperature %g not regulated below trip", got)
	}
	if math.Abs(d.Temperature()-55) > 3 {
		t.Errorf("temperature %g far from target 55", d.Temperature())
	}
	// The mitigation limit must be what holds it there: power well below
	// the unconstrained draw.
	if d.Limit() >= 70 {
		t.Errorf("mitigation limit %v did not bite", d.Limit())
	}
}

// After the load disappears, the daemon must release the limit and
// disengage.
func TestDaemonReleasesAfterLoadDrops(t *testing.T) {
	m := burnMachine(t)
	model := testModel(t)
	d, err := Attach(m, model, Config{TripTemp: 58, TargetTemp: 55})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(3 * time.Minute)
	if !d.Engaged() {
		t.Fatal("not engaged")
	}
	for i := 0; i < 10; i++ {
		m.Unpin(i)
	}
	m.Run(5 * time.Minute)
	if d.Engaged() {
		t.Error("mitigation still engaged long after load dropped")
	}
	if got := m.Limiter().Limit(); got != 0 {
		t.Errorf("RAPL limit not released: %v", got)
	}
}

// A cool workload must never trip.
func TestDaemonIdleNeverTrips(t *testing.T) {
	m, err := sim.New(platform.Skylake())
	if err != nil {
		t.Fatal(err)
	}
	model := testModel(t)
	d, err := Attach(m, model, Config{TripTemp: 58, TargetTemp: 55})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(2 * time.Minute)
	if d.Trips() != 0 || d.Engaged() {
		t.Errorf("idle machine tripped: %d trips", d.Trips())
	}
	// Idle steady state: ambient + R * idle power.
	want := model.SteadyState(m.PackagePower())
	if math.Abs(d.Temperature()-want) > 0.5 {
		t.Errorf("idle temperature %g, want %g", d.Temperature(), want)
	}
}
