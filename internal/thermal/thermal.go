// Package thermal models package temperature and a thermald-style thermal
// daemon (the paper's Section 2.2): a first-order RC thermal model driven
// by package power, and a controller that programs the RAPL limit to hold
// the die below a trip temperature — exactly how Linux's thermald uses
// RAPL as one of its mitigation mechanisms.
package thermal

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Model is a lumped RC thermal model: C · dT/dt = P − (T − Tambient)/R.
type Model struct {
	Ambient     float64 // ambient temperature, °C
	Resistance  float64 // junction-to-ambient thermal resistance, °C/W
	Capacitance float64 // thermal capacitance, J/°C

	temp float64
}

// NewModel returns a model settled at ambient temperature.
func NewModel(ambient, resistance, capacitance float64) (*Model, error) {
	if resistance <= 0 || capacitance <= 0 {
		return nil, fmt.Errorf("thermal: resistance and capacitance must be positive")
	}
	return &Model{
		Ambient:     ambient,
		Resistance:  resistance,
		Capacitance: capacitance,
		temp:        ambient,
	}, nil
}

// Temperature reports the current die temperature in °C.
func (m *Model) Temperature() float64 { return m.temp }

// SteadyState reports the temperature the die settles at under constant
// power: ambient + R·P.
func (m *Model) SteadyState(p units.Watts) float64 {
	return m.Ambient + m.Resistance*float64(p)
}

// TimeConstant reports the model's RC time constant.
func (m *Model) TimeConstant() time.Duration {
	return time.Duration(m.Resistance * m.Capacitance * float64(time.Second))
}

// Step integrates the model over dt under package power p.
func (m *Model) Step(p units.Watts, dt time.Duration) {
	if dt <= 0 {
		return
	}
	// Exact solution of the linear ODE over the step, stable for any dt.
	target := m.SteadyState(p)
	tau := m.Resistance * m.Capacitance
	decay := dt.Seconds() / tau
	if decay > 30 {
		m.temp = target
		return
	}
	m.temp = target + (m.temp-target)*math.Exp(-decay)
}

// Config parameterises the thermal daemon.
type Config struct {
	// TripTemp engages mitigation, °C.
	TripTemp float64
	// TargetTemp is the setpoint mitigation regulates to (must be below
	// TripTemp); release happens when the unconstrained limit would hold
	// the die below it.
	TargetTemp float64
	// Interval is the control period (default 1 s).
	Interval time.Duration
	// MinLimit floors the mitigation limit (default the chip's RAPLMin).
	MinLimit units.Watts
}

// Daemon is the thermald-style controller: it integrates the thermal model
// from the machine's package power and programs the machine's RAPL limit
// to keep temperature at or below the target once the trip fires.
type Daemon struct {
	m     *sim.Machine
	model *Model
	cfg   Config

	acc     time.Duration
	engaged bool
	limit   units.Watts
	trips   int
}

// Attach installs the thermal daemon on a machine.
func Attach(m *sim.Machine, model *Model, cfg Config) (*Daemon, error) {
	if model == nil {
		return nil, fmt.Errorf("thermal: nil model")
	}
	if !(cfg.TargetTemp > model.Ambient && cfg.TripTemp > cfg.TargetTemp) {
		return nil, fmt.Errorf("thermal: need ambient < target < trip, got %g/%g/%g",
			model.Ambient, cfg.TargetTemp, cfg.TripTemp)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.MinLimit <= 0 {
		cfg.MinLimit = m.Chip().RAPLMin
	}
	d := &Daemon{m: m, model: model, cfg: cfg, limit: m.Chip().RAPLMax}
	m.OnTick(d.tick)
	return d, nil
}

// Temperature reports the modelled die temperature.
func (d *Daemon) Temperature() float64 { return d.model.Temperature() }

// Engaged reports whether mitigation is active.
func (d *Daemon) Engaged() bool { return d.engaged }

// Trips reports how many times the trip temperature has fired.
func (d *Daemon) Trips() int { return d.trips }

// Limit reports the mitigation power limit currently programmed (the
// chip's maximum when disengaged).
func (d *Daemon) Limit() units.Watts { return d.limit }

func (d *Daemon) tick(dt time.Duration) {
	d.model.Step(d.m.PackagePower(), dt)
	d.acc += dt
	if d.acc < d.cfg.Interval {
		return
	}
	d.acc = 0
	t := d.model.Temperature()
	if !d.engaged {
		if t >= d.cfg.TripTemp {
			d.engaged = true
			d.trips++
		}
		return
	}
	pkg := d.m.PackagePower()
	if pkg < d.limit-2 && d.model.SteadyState(pkg) < d.cfg.TargetTemp-3 && t < d.cfg.TargetTemp {
		// The limiter is not binding (the load draws well under it on its
		// own) and the present draw cannot re-heat near the target:
		// disengage. Power at the limit means the load is only cool
		// *because* of mitigation, so this never fires mid-mitigation.
		d.engaged = false
		d.limit = d.m.Chip().RAPLMax
		d.m.SetPowerLimit(0)
		return
	}
	// Feed-forward mitigation: program the power whose steady state sits
	// exactly at the target temperature. Feedback (integral) control
	// against the lagging RC plant hunts and winds up during the trip
	// transient; the model-based operating point is exact and immediate,
	// and the RAPL limiter's own conservatism keeps the die slightly
	// below target.
	base := units.Watts((d.cfg.TargetTemp - d.model.Ambient) / d.model.Resistance)
	d.limit = base.Clamp(d.cfg.MinLimit, d.m.Chip().RAPLMax)
	d.m.SetPowerLimit(d.limit)
}
