package flight

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleDump() Dump {
	return Dump{
		Meta: Meta{
			Chip: "skylake", NumCores: 4, TickNS: 1e6, NomHz: 2.1e9, ESU: 14,
			Policy: "frequency-shares", LimitWatts: 50, IntervalNS: 1e9,
			Apps:   []MetaApp{{Name: "gcc", Core: 0, Shares: 90}, {Name: "cam4", Core: 1, Shares: 10}},
			Reason: "test",
		},
		Events: []Event{
			{Seq: 1, Time: 0, Wall: time.Microsecond, Kind: KindMSRWrite, Source: SourceMSR, Core: 0, Arg: 0x199, Value: 0x2A00},
			{Seq: 2, Time: time.Second, Wall: time.Millisecond, Kind: KindDecision, Source: SourceDaemon, Core: -1, Interval: 1, Arg: codeShareRebalance, Value: 48_000_000, Aux: 50_000_000},
			{Seq: 3, Time: time.Second, Wall: 2 * time.Millisecond, Kind: KindActuate, Source: SourceDaemon, Core: 3, Interval: 1, Arg: ActPark},
			{Seq: 4, Time: 2 * time.Second, Wall: 3 * time.Millisecond, Kind: KindRAPLThrottle, Source: SourceRAPL, Core: -1, Interval: 2, Value: 2_000_000_000, Aux: 55_000_000},
		},
	}
}

func TestDumpRoundTrip(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Version != FormatVersion {
		t.Errorf("version = %d", got.Meta.Version)
	}
	want := d.Meta
	want.Version = FormatVersion
	if got.Meta.Chip != want.Chip || got.Meta.Policy != want.Policy ||
		got.Meta.LimitWatts != want.LimitWatts || len(got.Meta.Apps) != 2 ||
		got.Meta.Apps[1].Name != "cam4" || got.Meta.Reason != "test" {
		t.Errorf("meta = %+v, want %+v", got.Meta, want)
	}
	if len(got.Events) != len(d.Events) {
		t.Fatalf("got %d events, want %d", len(got.Events), len(d.Events))
	}
	for i, e := range got.Events {
		if e != d.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, d.Events[i])
		}
	}
	// Core -1 must survive the unsigned on-disk representation.
	if got.Events[1].Core != -1 {
		t.Errorf("package-scope core = %d, want -1", got.Events[1].Core)
	}
}

func TestReadDumpRejectsBadMagicAndVersion(t *testing.T) {
	if _, err := ReadDump(bytes.NewReader([]byte("not a flight dump"))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	if err := sampleDump().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[7] = '9' // corrupt the version digits in the magic
	if _, err := ReadDump(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated record section.
	var buf2 bytes.Buffer
	if err := sampleDump().Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDump(bytes.NewReader(buf2.Bytes()[:buf2.Len()-10])); err == nil {
		t.Error("truncated dump accepted")
	}
}

func TestWriteDumpFile(t *testing.T) {
	dir := t.TempDir()
	d := sampleDump()
	path, err := WriteDumpFile(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "flight-") || !strings.HasSuffix(base, "-test.fr") {
		t.Errorf("dump filename = %q", base)
	}
	got, err := ReadDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(d.Events) {
		t.Fatalf("got %d events", len(got.Events))
	}
	// A second dump with a later seq range gets a distinct name.
	d2 := d
	d2.Events = append([]Event(nil), d.Events...)
	for i := range d2.Events {
		d2.Events[i].Seq += 100
	}
	path2, err := WriteDumpFile(dir, d2)
	if err != nil {
		t.Fatal(err)
	}
	if path2 == path {
		t.Error("successive dumps collided")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("dump dir has %d files", len(entries))
	}
}
