package flight

import (
	"bytes"
	"testing"
	"time"
)

// validDumpBytes encodes a small real dump for the fuzz corpus.
func validDumpBytes(tb testing.TB) []byte {
	tb.Helper()
	r := New(64)
	r.MergeMeta(Meta{Chip: "skylake", NumCores: 2, TickNS: 1e6, NomHz: 2.2e9})
	r.Record(Event{Kind: KindMSRRead, Source: SourceMSR, Core: 0, Arg: 0xE8, Value: 123})
	r.Record(Event{Kind: KindMSRWrite, Source: SourceMSR, Core: 1, Arg: 0x199, Value: 22})
	r.Record(Event{Kind: KindFaultInject, Source: SourceFault, Core: -1, Arg: FaultThermal, Value: 1.2e9})
	r.Record(Event{Kind: KindHealth, Source: SourceDaemon, Core: 1, Arg: HealthDegraded})
	var buf bytes.Buffer
	if err := r.Dump("fuzz-seed").Encode(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadDump feeds arbitrary bytes to the dump parser. The parser must
// never panic or allocate unboundedly, and anything it accepts must survive
// an encode/decode round trip with its events intact.
func FuzzReadDump(f *testing.F) {
	valid := validDumpBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-13]) // truncated mid-record
	f.Add(valid[:9])             // truncated mid-header-length
	f.Add([]byte("PADFR001"))    // magic only
	f.Add([]byte("not a dump at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadDump(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			t.Fatalf("accepted dump failed to re-encode: %v", err)
		}
		d2, err := ReadDump(&buf)
		if err != nil {
			t.Fatalf("re-encoded dump rejected: %v", err)
		}
		if len(d2.Events) != len(d.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(d.Events), len(d2.Events))
		}
		for i := range d.Events {
			if d.Events[i] != d2.Events[i] {
				t.Fatalf("event %d changed: %+v -> %+v", i, d.Events[i], d2.Events[i])
			}
		}
	})
}

// FuzzDecodeRecord hammers the fixed-size record codec directly: any
// 56-byte pattern must decode, re-encode, and decode to the same event.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(make([]byte, recordSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < recordSize {
			return
		}
		var b [recordSize]byte
		copy(b[:], data)
		e := decodeRecord(&b)
		var b2 [recordSize]byte
		encodeRecord(&b2, e)
		if e2 := decodeRecord(&b2); e != e2 {
			t.Fatalf("record round trip diverged: %+v vs %+v", e, e2)
		}
		_ = e.Kind.String()
		_ = e.Source.String()
		_ = time.Duration(e.Time).String()
	})
}
