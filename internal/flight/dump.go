package flight

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// FormatVersion is the dump format version written into Meta and implied by
// the magic. Bump it (and the magic) on any layout change.
const FormatVersion = 1

// dumpMagic opens every dump file; the trailing digits version the record
// layout.
var dumpMagic = [8]byte{'P', 'A', 'D', 'F', 'R', '0', '0', '1'}

// recordSize is the fixed on-disk size of one event.
const recordSize = 56

// MetaApp describes one managed application in a dump, enough to re-pin the
// same workload during replay.
type MetaApp struct {
	Name         string `json:"name"`
	Core         int    `json:"core"`
	Shares       int    `json:"shares,omitempty"`
	HighPriority bool   `json:"high_priority,omitempty"`
}

// Meta is the dump header: everything replay needs to rebuild the machine
// and the control plane that produced the events.
type Meta struct {
	Version int    `json:"version"`
	Reason  string `json:"reason,omitempty"` // what triggered the dump

	// Machine description (contributed by the simulator).
	Chip         string  `json:"chip,omitempty"`
	NumCores     int     `json:"num_cores,omitempty"`
	TickNS       int64   `json:"tick_ns,omitempty"`
	NomHz        float64 `json:"nom_hz,omitempty"`
	ESU          uint    `json:"esu,omitempty"`
	PerCorePower bool    `json:"per_core_power,omitempty"`

	// Control-plane description (contributed by the daemon).
	Policy     string    `json:"policy,omitempty"`
	LimitWatts float64   `json:"limit_watts,omitempty"`
	IntervalNS int64     `json:"interval_ns,omitempty"`
	Apps       []MetaApp `json:"apps,omitempty"`
}

// merge folds the non-zero fields of m into the receiver.
func (m *Meta) merge(o Meta) {
	if o.Reason != "" {
		m.Reason = o.Reason
	}
	if o.Chip != "" {
		m.Chip = o.Chip
	}
	if o.NumCores != 0 {
		m.NumCores = o.NumCores
	}
	if o.TickNS != 0 {
		m.TickNS = o.TickNS
	}
	if o.NomHz != 0 {
		m.NomHz = o.NomHz
	}
	if o.ESU != 0 {
		m.ESU = o.ESU
	}
	if o.PerCorePower {
		m.PerCorePower = true
	}
	if o.Policy != "" {
		m.Policy = o.Policy
	}
	if o.LimitWatts != 0 {
		m.LimitWatts = o.LimitWatts
	}
	if o.IntervalNS != 0 {
		m.IntervalNS = o.IntervalNS
	}
	if o.Apps != nil {
		m.Apps = o.Apps
	}
}

// Dump is one decoded (or to-be-encoded) flight-recorder snapshot. Events
// are sorted by sequence number.
type Dump struct {
	Meta   Meta
	Events []Event
}

// Encode writes the dump in the versioned binary format: magic, a
// length-prefixed JSON header, then fixed-size little-endian records.
func (d Dump) Encode(w io.Writer) error {
	meta := d.Meta
	meta.Version = FormatVersion
	hdr, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("flight: encoding meta: %w", err)
	}
	if _, err := w.Write(dumpMagic[:]); err != nil {
		return fmt.Errorf("flight: writing magic: %w", err)
	}
	var n [8]byte
	binary.LittleEndian.PutUint32(n[:4], uint32(len(hdr)))
	if _, err := w.Write(n[:4]); err != nil {
		return fmt.Errorf("flight: writing header length: %w", err)
	}
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("flight: writing header: %w", err)
	}
	binary.LittleEndian.PutUint64(n[:], uint64(len(d.Events)))
	if _, err := w.Write(n[:]); err != nil {
		return fmt.Errorf("flight: writing record count: %w", err)
	}
	var rec [recordSize]byte
	for _, e := range d.Events {
		encodeRecord(&rec, e)
		if _, err := w.Write(rec[:]); err != nil {
			return fmt.Errorf("flight: writing record %d: %w", e.Seq, err)
		}
	}
	return nil
}

func encodeRecord(b *[recordSize]byte, e Event) {
	le := binary.LittleEndian
	le.PutUint64(b[0:], e.Seq)
	le.PutUint64(b[8:], uint64(e.Time))
	le.PutUint64(b[16:], uint64(e.Wall))
	b[24] = byte(e.Kind)
	b[25] = byte(e.Source)
	le.PutUint16(b[26:], uint16(e.Core))
	le.PutUint32(b[28:], e.Interval)
	le.PutUint32(b[32:], e.Arg)
	le.PutUint32(b[36:], 0) // reserved
	le.PutUint64(b[40:], e.Value)
	le.PutUint64(b[48:], e.Aux)
}

func decodeRecord(b *[recordSize]byte) Event {
	le := binary.LittleEndian
	return Event{
		Seq:      le.Uint64(b[0:]),
		Time:     time.Duration(le.Uint64(b[8:])),
		Wall:     time.Duration(le.Uint64(b[16:])),
		Kind:     Kind(b[24]),
		Source:   Source(b[25]),
		Core:     int16(le.Uint16(b[26:])),
		Interval: le.Uint32(b[28:]),
		Arg:      le.Uint32(b[32:]),
		Value:    le.Uint64(b[40:]),
		Aux:      le.Uint64(b[48:]),
	}
}

// maxHeaderLen bounds the JSON header so a corrupt length prefix cannot
// trigger an unbounded allocation.
const maxHeaderLen = 1 << 20

// ReadDump decodes a dump written by Encode, rejecting unknown magic or
// versions.
func ReadDump(r io.Reader) (Dump, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Dump{}, fmt.Errorf("flight: reading magic: %w", err)
	}
	if magic != dumpMagic {
		return Dump{}, fmt.Errorf("flight: bad magic %q (not a flight dump, or an unsupported version)", magic[:])
	}
	var n [8]byte
	if _, err := io.ReadFull(r, n[:4]); err != nil {
		return Dump{}, fmt.Errorf("flight: reading header length: %w", err)
	}
	hlen := binary.LittleEndian.Uint32(n[:4])
	if hlen > maxHeaderLen {
		return Dump{}, fmt.Errorf("flight: header length %d exceeds limit", hlen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Dump{}, fmt.Errorf("flight: reading header: %w", err)
	}
	var d Dump
	if err := json.Unmarshal(hdr, &d.Meta); err != nil {
		return Dump{}, fmt.Errorf("flight: decoding header: %w", err)
	}
	if d.Meta.Version != FormatVersion {
		return Dump{}, fmt.Errorf("flight: unsupported dump version %d (want %d)", d.Meta.Version, FormatVersion)
	}
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return Dump{}, fmt.Errorf("flight: reading record count: %w", err)
	}
	count := binary.LittleEndian.Uint64(n[:])
	var rec [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return Dump{}, fmt.Errorf("flight: reading record %d/%d: %w", i, count, err)
		}
		d.Events = append(d.Events, decodeRecord(&rec))
	}
	return d, nil
}

// ReadDumpFile decodes the dump at path.
func ReadDumpFile(path string) (Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return Dump{}, fmt.Errorf("flight: %w", err)
	}
	defer f.Close()
	return ReadDump(f)
}

// WriteDumpFile encodes the dump into dir as
// flight-<firstseq>-<lastseq>-<reason>.fr and returns the path. The
// sequence range in the name makes successive trigger dumps sort and never
// collide.
func WriteDumpFile(dir string, d Dump) (string, error) {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: creating dump dir: %w", err)
	}
	var first, last uint64
	if len(d.Events) > 0 {
		first, last = d.Events[0].Seq, d.Events[len(d.Events)-1].Seq
	}
	reason := d.Meta.Reason
	if reason == "" {
		reason = "manual"
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%08d-%08d-%s.fr", first, last, reason))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("flight: creating dump file: %w", err)
	}
	if err := d.Encode(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("flight: closing dump file: %w", err)
	}
	return path, nil
}
