package replay

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// recordFaulted runs a resilient daemon through a schedule covering every
// fault class and returns the flight dump.
func recordFaulted(t *testing.T) flight.Dump {
	t.Helper()
	chip := platform.Skylake()
	rec := flight.New(flight.DefaultCapacity)
	m, err := sim.New(chip, sim.WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	specs := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 70},
		{Name: "leela", Core: 1, Shares: 30},
	}
	for _, s := range specs {
		if err := m.Pin(workload.NewInstance(workload.MustByName(s.Name)), s.Core); err != nil {
			t.Fatal(err)
		}
	}
	m.SetPowerLimit(35)
	sched, err := fault.ParseSchedule(`
at 100ms for 100ms eio cpu=0 prob=0.6
at 250ms for 100ms stuck cpu=* regs=MPERF,PKG_ENERGY_STATUS
at 400ms for 100ms torn cpu=*
at 550ms for 100ms latency cpu=* delay=1ms
at 700ms for 100ms thermal cap=1200MHz
at 850ms for 100ms rapl limit=25W
at 1s for 100ms offline cpu=1
`)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(sched, 17)
	inj.Flight(rec)
	inj.Drive(m)

	pol, err := core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dev := inj.WrapDevice(m.Device())
	dmn, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs, Limit: 35,
		Interval:   20 * time.Millisecond,
		Flight:     rec,
		Resilience: &daemon.Resilience{},
	}, dev, daemon.MachineActuator{M: m, Dev: dev})
	if err != nil {
		t.Fatal(err)
	}
	if err := dmn.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(1300 * time.Millisecond)
	if err := dmn.Err(); err != nil {
		t.Fatal(err)
	}
	return rec.Dump("chaos")
}

func countFaultEvents(d flight.Dump) (injects, clears int) {
	for _, ev := range d.Events {
		switch ev.Kind {
		case flight.KindFaultInject:
			injects++
		case flight.KindFaultClear:
			clears++
		}
	}
	return injects, clears
}

// TestFaultedRunReplaysBitIdentical is the replay guarantee extended to
// chaos: a run perturbed by every fault class — lying MSRs included — dumps
// to a file, reads back, and replays with zero mismatches, because the
// injector sits above the recorded device (faulted reads never become
// ground truth) and platform faults are recorded as replayable inputs.
func TestFaultedRunReplaysBitIdentical(t *testing.T) {
	d := recordFaulted(t)
	injects, clears := countFaultEvents(d)
	if injects != 7 || clears != 7 {
		t.Fatalf("dump has %d injects, %d clears; want 7 and 7", injects, clears)
	}

	// Round-trip the dump through the on-disk format.
	path, err := flight.WriteDumpFile(t.TempDir(), d)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := flight.ReadDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Events) != len(d.Events) {
		t.Fatalf("file round trip lost events: %d -> %d", len(d.Events), len(d2.Events))
	}
	if i2, c2 := countFaultEvents(d2); i2 != injects || c2 != clears {
		t.Fatalf("fault events did not survive the file: %d/%d -> %d/%d", injects, clears, i2, c2)
	}

	res, err := Replay(d2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("dump unexpectedly truncated")
	}
	if len(res.Mismatches) != 0 {
		t.Fatalf("%d mismatches; first: %v", len(res.Mismatches), res.Mismatches[0])
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("replay exercised nothing: %d reads, %d writes", res.Reads, res.Writes)
	}

	// The derived series must agree point for point, and actually contain
	// the thermal excursion (a sample at or under the 1200 MHz clamp
	// inside its window).
	sawClamp := false
	for cpu, recSeries := range res.RecordedFreq {
		repSeries := res.ReplayedFreq[cpu]
		if len(recSeries) != len(repSeries) {
			t.Fatalf("cpu%d: derived series lengths differ: %d vs %d", cpu, len(recSeries), len(repSeries))
		}
		for i := range recSeries {
			if recSeries[i] != repSeries[i] {
				t.Fatalf("cpu%d sample %d: recorded %+v, replayed %+v", cpu, i, recSeries[i], repSeries[i])
			}
			if recSeries[i].Time > 700*time.Millisecond && recSeries[i].Time <= 800*time.Millisecond &&
				recSeries[i].Hz > 0 && recSeries[i].Hz <= 1200*units.MHz {
				sawClamp = true
			}
		}
	}
	if !sawClamp {
		t.Error("derived frequency series never shows the thermal clamp")
	}
	if len(res.RecordedPower) != len(res.ReplayedPower) {
		t.Fatalf("power series lengths differ: %d vs %d", len(res.RecordedPower), len(res.ReplayedPower))
	}
	for i := range res.RecordedPower {
		if res.RecordedPower[i] != res.ReplayedPower[i] {
			t.Fatalf("power sample %d: recorded %+v, replayed %+v", i, res.RecordedPower[i], res.ReplayedPower[i])
		}
	}
}

// TestFaultedRunsAreSeedDeterministic: two identically seeded chaos runs
// produce byte-identical event logs — the property that makes a fault
// schedule a reproducible test case rather than a flake generator.
func TestFaultedRunsAreSeedDeterministic(t *testing.T) {
	a := recordFaulted(t)
	b := recordFaulted(t)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		// Wall stamps are wall-clock and legitimately differ.
		ea.Wall, eb.Wall = 0, 0
		if ea != eb {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
}
