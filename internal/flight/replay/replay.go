// Package replay reconstructs a simulated machine from a flight-recorder
// dump and re-executes the recorded run deterministically.
//
// The dump's metadata names the chip, tick, energy unit, and pinned
// applications; the event log holds every MSR write and every park/wake
// actuation the control plane issued, stamped with the virtual time it
// landed. Because the simulator is a deterministic function of its initial
// state and those inputs, stepping a fresh machine and re-applying the
// writes at their recorded times reproduces the run exactly: re-issuing
// each recorded MSR read must return the recorded value bit for bit. Any
// mismatch localises the first point where the replayed machine diverged —
// the flight-recorder equivalent of a failing assertion with a core dump
// attached.
//
// Beyond raw counter values, Replay derives the same per-core frequency
// (nominal · ΔAPERF/ΔMPERF) and package power (energy-status delta scaled
// by 2^-ESU over the interval) series the daemon's telemetry computed,
// from both the recorded and the replayed read streams, so callers can
// assert the series agree exactly or render them side by side.
package replay

import (
	"fmt"
	"time"

	"repro/internal/flight"
	"repro/internal/msr"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Mismatch is one replayed MSR read that disagreed with the recording.
type Mismatch struct {
	Seq      uint64
	Time     time.Duration
	Core     int
	Reg      uint32
	Recorded uint64
	Replayed uint64
}

func (mm Mismatch) String() string {
	return fmt.Sprintf("seq %d t=%v cpu%d %s: recorded %#x, replayed %#x",
		mm.Seq, mm.Time, mm.Core, msr.RegName(mm.Reg), mm.Recorded, mm.Replayed)
}

// FreqPoint is one derived frequency sample for a core.
type FreqPoint struct {
	Interval uint32
	Time     time.Duration
	Hz       units.Hertz
}

// PowerPoint is one derived package-power sample.
type PowerPoint struct {
	Interval uint32
	Time     time.Duration
	Watts    units.Watts
}

// Result summarises a replay.
type Result struct {
	// Writes, Reads, Parks count the replayed inputs (MSR writes, MSR
	// reads re-issued for comparison, park/wake actuations).
	Writes, Reads, Parks int

	// Mismatches lists every read whose replayed value differed from the
	// recording, in sequence order. Empty means the replay was exact.
	Mismatches []Mismatch

	// Truncated reports that the dump does not start at sequence zero:
	// the ring overwrote the beginning of the run, so the replayed
	// machine's initial state may not match and mismatches are expected.
	Truncated bool

	// RecordedFreq and ReplayedFreq are the per-core derived frequency
	// series (nominal · ΔAPERF/ΔMPERF per control interval), computed from
	// the recorded and the replayed counter reads respectively. Keyed by
	// core id.
	RecordedFreq, ReplayedFreq map[int][]FreqPoint

	// RecordedPower and ReplayedPower are the derived package-power
	// series (energy-status counter delta · 2^-ESU per interval second).
	RecordedPower, ReplayedPower []PowerPoint
}

// chipFor resolves a chip from either the platform lookup key ("skylake")
// or the full model name dumps carry ("Skylake Xeon-SP 4114").
func chipFor(name string) (platform.Chip, error) {
	if c, err := platform.ByName(name); err == nil {
		return c, nil
	}
	for _, c := range []platform.Chip{platform.Skylake(), platform.Ryzen()} {
		if c.Name == name {
			return c, nil
		}
	}
	return platform.Chip{}, fmt.Errorf("unknown chip %q", name)
}

// Machine rebuilds a simulated machine matching the dump's metadata: same
// chip, tick, energy unit, and pinned applications, all cores in their
// boot state. Callers drive it themselves when they want to poke at the
// replayed run; Replay uses it internally.
func Machine(meta flight.Meta) (*sim.Machine, error) {
	if meta.Chip == "" {
		return nil, fmt.Errorf("replay: dump has no chip metadata (recorder not wired to a machine?)")
	}
	chip, err := chipFor(meta.Chip)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if meta.NumCores != 0 && meta.NumCores != chip.NumCores {
		return nil, fmt.Errorf("replay: dump says %d cores but %s has %d",
			meta.NumCores, chip.Name, chip.NumCores)
	}
	opts := []sim.Option{}
	if meta.TickNS > 0 {
		opts = append(opts, sim.WithTick(time.Duration(meta.TickNS)))
	}
	if meta.ESU > 0 {
		opts = append(opts, sim.WithEnergyUnit(meta.ESU))
	}
	m, err := sim.New(chip, opts...)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	for _, a := range meta.Apps {
		p, err := workload.ByName(a.Name)
		if err != nil {
			return nil, fmt.Errorf("replay: app %q: %w", a.Name, err)
		}
		if err := m.Pin(workload.NewInstance(p), a.Core); err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
	}
	return m, nil
}

// Replay re-executes the dump against a fresh machine and reports how
// faithfully the recording reproduces. An error means the replay could not
// be driven at all (unknown chip, unknown app, an input that the machine
// rejected); divergence of values is not an error, it is Mismatches.
func Replay(d flight.Dump) (*Result, error) {
	m, err := Machine(d.Meta)
	if err != nil {
		return nil, err
	}
	res := &Result{
		RecordedFreq: make(map[int][]FreqPoint),
		ReplayedFreq: make(map[int][]FreqPoint),
	}
	// Sequence numbers start at 1; a dump that does not contain the first
	// event has lost the beginning of the run to ring overwrite.
	if len(d.Events) > 0 && d.Events[0].Seq != 1 {
		res.Truncated = true
	}
	rec := newDeriver(d.Meta)
	rep := newDeriver(d.Meta)
	dev := m.Device()
	for _, ev := range d.Events {
		if ev.Time > m.Now() {
			// Events are stamped after the step that ended at their time,
			// so the machine must have completed that step before the
			// input is applied.
			m.Run(ev.Time - m.Now())
		}
		switch ev.Kind {
		case flight.KindMSRWrite:
			if err := dev.Write(int(ev.Core), ev.Arg, ev.Value); err != nil {
				return nil, fmt.Errorf("replay: seq %d t=%v: write cpu%d %s: %w",
					ev.Seq, ev.Time, ev.Core, msr.RegName(ev.Arg), err)
			}
			res.Writes++
		case flight.KindMSRRead:
			got, err := dev.Read(int(ev.Core), ev.Arg)
			if err != nil {
				return nil, fmt.Errorf("replay: seq %d t=%v: read cpu%d %s: %w",
					ev.Seq, ev.Time, ev.Core, msr.RegName(ev.Arg), err)
			}
			res.Reads++
			if got != ev.Value {
				res.Mismatches = append(res.Mismatches, Mismatch{
					Seq: ev.Seq, Time: ev.Time, Core: int(ev.Core),
					Reg: ev.Arg, Recorded: ev.Value, Replayed: got,
				})
			}
			rec.read(ev, ev.Value)
			rep.read(ev, got)
		case flight.KindActuate:
			switch ev.Arg {
			case flight.ActPark:
				if err := m.SetIdle(int(ev.Core), true); err != nil {
					return nil, fmt.Errorf("replay: seq %d t=%v: park core %d: %w",
						ev.Seq, ev.Time, ev.Core, err)
				}
				res.Parks++
			case flight.ActWake:
				if err := m.SetIdle(int(ev.Core), false); err != nil {
					return nil, fmt.Errorf("replay: seq %d t=%v: wake core %d: %w",
						ev.Seq, ev.Time, ev.Core, err)
				}
				res.Parks++
			}
			// ActSetFreq is informational: the actual input is the
			// PERF_CTL write already replayed above.
		case flight.KindFaultInject, flight.KindFaultClear:
			// Platform-level faults perturb the machine outside the MSR
			// path, so they are replay inputs. Device-level fault classes
			// (eio, stuck, torn, latency) only perturbed the control
			// plane, whose resulting writes are already in the log.
			if err := applyFault(m, ev); err != nil {
				return nil, fmt.Errorf("replay: seq %d t=%v: %w", ev.Seq, ev.Time, err)
			}
		}
		// Decisions, RAPL cap moves, C-state transitions, and constraint
		// changes are outputs of the run, not inputs: the replayed machine
		// regenerates them on its own.
	}
	res.RecordedFreq, res.RecordedPower = rec.freq, rec.power
	res.ReplayedFreq, res.ReplayedPower = rep.freq, rep.power
	return res, nil
}

// applyFault re-applies one recorded platform-fault transition to the
// replayed machine. Inject events carry the fault parameter; clear events
// carry the value being restored, so both directions are plain
// applications.
func applyFault(m *sim.Machine, ev flight.Event) error {
	switch ev.Arg {
	case flight.FaultThermal:
		m.SetThermalCap(units.Hertz(ev.Value))
	case flight.FaultRAPL:
		m.SetPowerLimit(units.Watts(float64(ev.Value) / 1e6))
	case flight.FaultOffline:
		if err := m.SetOffline(int(ev.Core), ev.Kind == flight.KindFaultInject); err != nil {
			return fmt.Errorf("%s core %d: %w", flight.FaultName(ev.Arg), ev.Core, err)
		}
	}
	// Device-level classes carry no machine state: nothing to apply.
	return nil
}

// deriver recomputes the daemon's derived telemetry from a stream of MSR
// read values: per-core frequency from APERF/MPERF deltas, package power
// from energy-status deltas. Recorded and replayed streams each get their
// own deriver so the two series can be compared.
type deriver struct {
	nom   float64
	unit  msr.EnergyUnit
	freq  map[int][]FreqPoint
	power []PowerPoint

	aperf   map[int]uint64 // APERF seen this interval, keyed by core
	prevA   map[int]uint64 // completed pair from the previous interval
	prevM   map[int]uint64
	havePrv map[int]bool

	prevE     uint64 // previous energy-status counter
	prevETime time.Duration
	haveE     bool
	haveAFlag map[int]bool
}

func newDeriver(meta flight.Meta) *deriver {
	return &deriver{
		nom:       meta.NomHz,
		unit:      msr.EnergyUnit{ESU: meta.ESU},
		freq:      make(map[int][]FreqPoint),
		aperf:     make(map[int]uint64),
		prevA:     make(map[int]uint64),
		prevM:     make(map[int]uint64),
		havePrv:   make(map[int]bool),
		haveAFlag: make(map[int]bool),
	}
}

func (dv *deriver) read(ev flight.Event, val uint64) {
	core := int(ev.Core)
	switch ev.Arg {
	case msr.IA32Aperf:
		dv.aperf[core] = val
		dv.haveAFlag[core] = true
	case msr.IA32Mperf:
		if !dv.haveAFlag[core] {
			return
		}
		dv.haveAFlag[core] = false
		a := dv.aperf[core]
		if dv.havePrv[core] {
			da, dm := a-dv.prevA[core], val-dv.prevM[core]
			var hz units.Hertz
			if dm > 0 {
				hz = units.Hertz(dv.nom * float64(da) / float64(dm))
			}
			dv.freq[core] = append(dv.freq[core], FreqPoint{
				Interval: ev.Interval, Time: ev.Time, Hz: hz,
			})
		}
		dv.prevA[core], dv.prevM[core] = a, val
		dv.havePrv[core] = true
	case msr.PkgEnergyStatus:
		if dv.haveE {
			sec := (ev.Time - dv.prevETime).Seconds()
			if sec > 0 {
				j := dv.unit.FromCounts(msr.DeltaCounts(dv.prevE, val))
				dv.power = append(dv.power, PowerPoint{
					Interval: ev.Interval, Time: ev.Time,
					Watts: units.Watts(float64(j) / sec),
				})
			}
		}
		dv.prevE, dv.prevETime, dv.haveE = val, ev.Time, true
	}
}
