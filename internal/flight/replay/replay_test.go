package replay

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/flight"
	"repro/internal/flight/flighttest"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// record runs a policy-controlled workload mix with the flight recorder
// attached and returns the resulting dump.
func record(t *testing.T, policy string, capacity int, d time.Duration) flight.Dump {
	t.Helper()
	chip, err := platform.ByName("skylake")
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(capacity)
	flighttest.DumpOnFailure(t, rec)
	m, err := sim.New(chip, sim.WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	specs := []core.AppSpec{
		{Name: "gcc", Core: 0, Shares: 90},
		{Name: "cam4", Core: 1, Shares: 10, AVX: true},
	}
	limit := units.Watts(50)
	var pol core.Policy
	switch policy {
	case "frequency":
		pol, err = core.NewFrequencyShares(chip, specs, core.ShareConfig{})
	case "priority":
		// Priority with a tight limit parks the LP core, so the dump
		// contains park/wake actuations too.
		limit = 22
		specs[0].Shares, specs[1].Shares = 0, 0
		specs[0].HighPriority = true
		pol, err = core.NewPriority(chip, specs, core.PriorityConfig{Limit: limit})
	default:
		t.Fatalf("unknown policy %q", policy)
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		p := workload.MustByName(s.Name)
		if err := m.Pin(workload.NewInstance(p), s.Core); err != nil {
			t.Fatal(err)
		}
	}
	dmn, err := daemon.New(daemon.Config{
		Chip: chip, Policy: pol, Apps: specs,
		Limit: limit, Interval: time.Second, Flight: rec,
	}, m.Device(), daemon.MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := dmn.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(d)
	if err := dmn.Err(); err != nil {
		t.Fatal(err)
	}
	return rec.Dump("test")
}

// TestReplayBitIdentical is the flight recorder's core guarantee: replaying
// a dump against a fresh machine reproduces every recorded MSR read — and
// therefore the derived per-core frequency and package-power series — bit
// for bit.
func TestReplayBitIdentical(t *testing.T) {
	for _, policy := range []string{"frequency", "priority"} {
		t.Run(policy, func(t *testing.T) {
			d := record(t, policy, 0, 20*time.Second)
			res, err := Replay(d)
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatal("dump unexpectedly truncated")
			}
			if res.Writes == 0 || res.Reads == 0 {
				t.Fatalf("replay saw no inputs: %d writes, %d reads", res.Writes, res.Reads)
			}
			if policy == "priority" && res.Parks == 0 {
				t.Error("priority run replayed no park/wake actuations")
			}
			for _, mm := range res.Mismatches {
				t.Errorf("mismatch: %v", mm)
			}
			// The derived series must agree exactly — same floats, not
			// approximately equal floats.
			if len(res.RecordedFreq) == 0 || len(res.RecordedPower) == 0 {
				t.Fatal("no derived series")
			}
			for corenum, recSeries := range res.RecordedFreq {
				repSeries := res.ReplayedFreq[corenum]
				if len(recSeries) != len(repSeries) {
					t.Fatalf("core %d: %d recorded freq points, %d replayed",
						corenum, len(recSeries), len(repSeries))
				}
				for i := range recSeries {
					if recSeries[i] != repSeries[i] {
						t.Errorf("core %d point %d: recorded %+v, replayed %+v",
							corenum, i, recSeries[i], repSeries[i])
					}
				}
			}
			if len(res.RecordedPower) != len(res.ReplayedPower) {
				t.Fatalf("%d recorded power points, %d replayed",
					len(res.RecordedPower), len(res.ReplayedPower))
			}
			for i := range res.RecordedPower {
				if res.RecordedPower[i] != res.ReplayedPower[i] {
					t.Errorf("power point %d: recorded %+v, replayed %+v",
						i, res.RecordedPower[i], res.ReplayedPower[i])
				}
			}
		})
	}
}

// TestReplayRoundTripThroughFile exercises the full pipeline: record, encode
// to the binary dump format, decode, replay.
func TestReplayRoundTripThroughFile(t *testing.T) {
	d := record(t, "frequency", 0, 10*time.Second)
	dir := t.TempDir()
	path, err := flight.WriteDumpFile(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := flight.ReadDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) != 0 {
		t.Fatalf("%d mismatches after file round trip; first: %v",
			len(res.Mismatches), res.Mismatches[0])
	}
}

// TestReplayTruncatedDump checks that a dump whose ring overwrote the start
// of the run is flagged rather than silently replayed from a wrong state.
func TestReplayTruncatedDump(t *testing.T) {
	// A tiny ring over a long run is guaranteed to overwrite.
	d := record(t, "frequency", 16, 30*time.Second)
	res, err := Replay(d)
	if err != nil {
		// A truncated dump may legitimately fail to drive (e.g. a wake for
		// a core the replayed machine thinks is already awake); that is an
		// acceptable outcome as long as complete dumps replay cleanly.
		t.Logf("truncated replay failed to drive: %v", err)
		return
	}
	if !res.Truncated {
		t.Error("dump from overwritten ring not flagged as truncated")
	}
}

// TestMachineRejectsForeignMeta checks the guard rails on rebuilding.
func TestMachineRejectsForeignMeta(t *testing.T) {
	if _, err := Machine(flight.Meta{}); err == nil {
		t.Error("no chip metadata: want error")
	}
	if _, err := Machine(flight.Meta{Chip: "no-such-chip"}); err == nil {
		t.Error("unknown chip: want error")
	}
	if _, err := Machine(flight.Meta{Chip: "skylake", NumCores: 99}); err == nil {
		t.Error("core-count mismatch: want error")
	}
	if _, err := Machine(flight.Meta{Chip: "skylake", Apps: []flight.MetaApp{{Name: "no-such-app"}}}); err == nil {
		t.Error("unknown app: want error")
	}
}
