// Package flight is the control plane's black-box flight recorder: an
// always-on, constant-memory binary event log that captures every MSR
// access, every policy decision with its typed reason, every RAPL
// throttle/release, and every simulated C-state or frequency-constraint
// transition. Each event carries a global monotonic sequence number and the
// control-interval id it happened in, so cross-source causality (sample →
// decide → actuate) is recoverable from the log alone.
//
// The recorder keeps one fixed-capacity ring per event source. Each source
// has a single writer (the MSR device's accessing goroutine, the daemon
// loop, the simulation step), so the per-ring mutex is uncontended on the
// record path and only ever shared with snapshotters; recording is
// allocation-free. When a ring fills, the oldest events are overwritten —
// memory stays constant no matter how long the daemon runs.
//
// Snapshots of the ring are serialised by the dump codec in dump.go into a
// versioned binary file that cmd/powerdump decodes, analyses, and — because
// the simulator is discrete-time and the log contains every MSR access —
// deterministically replays (internal/flight/replay).
package flight

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Source identifies the subsystem that emitted an event. Each source owns
// one ring and has exactly one writing goroutine.
type Source uint8

// The event sources.
const (
	SourceMSR     Source = iota // register-level device access
	SourceDaemon                // control-loop decisions and actuations
	SourceRAPL                  // hardware power limiter cap movements
	SourceSim                   // simulated C-state and constraint transitions
	SourceFault                 // fault-injector window transitions
	SourceControl               // control-plane lease and reconfiguration traffic
	SourceLedger                // energy-ledger attribution and anomaly detectors
	numSources
)

// String names the source for reports.
func (s Source) String() string {
	switch s {
	case SourceMSR:
		return "msr"
	case SourceDaemon:
		return "daemon"
	case SourceRAPL:
		return "rapl"
	case SourceSim:
		return "sim"
	case SourceFault:
		return "fault"
	case SourceControl:
		return "control"
	case SourceLedger:
		return "ledger"
	}
	return "unknown"
}

// Kind classifies an event. The vocabulary is closed and versioned with the
// dump format; powerdump matches on these exact values.
type Kind uint8

// The event kinds.
const (
	// KindMSRRead records a successful register read: Core is the CPU,
	// Arg the canonical register address, Value the value read.
	KindMSRRead Kind = iota + 1
	// KindMSRWrite records a successful register write: Core is the CPU,
	// Arg the canonical register address, Value the value written.
	KindMSRWrite
	// KindDecision records one typed reason from a policy update: Arg is
	// the reason code (codes.go), Value the observed package power in µW,
	// Aux the enforced limit in µW. Core is -1 (package scope).
	KindDecision
	// KindActuate records one applied policy action: Arg is an Act* code,
	// Core the target core, Value the requested frequency in Hz (set-freq
	// only).
	KindActuate
	// KindRAPLThrottle / KindRAPLRelease record the hardware limiter
	// stepping its internal frequency cap down or up: Value is the new cap
	// in Hz, Aux the instantaneous package power in µW. Core is -1.
	KindRAPLThrottle
	KindRAPLRelease
	// KindCStateSleep / KindCStateWake record a simulated core entering or
	// leaving an idle state: Value is the C-state table index (sleep) or
	// the exit-latency debt in ns (wake).
	KindCStateSleep
	KindCStateWake
	// KindConstraint records a change of the constraint binding a core's
	// effective frequency: Arg is a Constraint* code. AVX-licence
	// transitions appear here as ConstraintAVXLicence.
	KindConstraint
	// KindFaultInject / KindFaultClear record a fault-injector window
	// opening or closing: Arg is a Fault* class code, Core the target CPU
	// (-1 for package scope), Value the class parameter (thermal cap in Hz,
	// RAPL limit in µW, latency in ns) — on clear, the value being
	// restored. Platform-level fault events are replay inputs: the
	// replayer re-applies them to the rebuilt machine.
	KindFaultInject
	KindFaultClear
	// KindHealth records the daemon's per-core health state machine moving:
	// Arg is a Health* code, Core the affected CPU, Value the telemetry
	// status code that triggered the transition.
	KindHealth
	// KindLease records the node agent's lease state machine moving: Arg is
	// a Lease* code, Core the agent's node id (-1 when unset), Value the
	// power cap taking effect in µW, Aux the lease TTL in ns (grant/renew)
	// or the cap being left behind in µW (expire/fallback).
	KindLease
	// KindReconfigure records a live reconfiguration applied to a running
	// daemon: Arg is a Reconfig* code, Value the new limit in µW (limit
	// changes) and Aux the previous limit in µW.
	KindReconfigure
	// KindEnergy records one energy-ledger account advancing at the end of
	// a control interval: Arg is the app index in spec order (or an
	// Energy* sentinel for the unattributed/excluded/total/limit/overshoot
	// accounts), Core the app's pinned core (-1 for package accounts),
	// Value the microjoules attributed this interval, Aux the cumulative
	// microjoules of the account. Because Aux is cumulative, the latest
	// retained event per account reproduces the ledger's totals exactly,
	// no matter how much of the ring has been overwritten.
	KindEnergy
	// KindAnomaly records a streaming anomaly detector firing: Arg is an
	// Anomaly* code, Core the affected app core or socket (-1 for package
	// scope), Value/Aux detector-specific payload (see the code docs).
	KindAnomaly
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindMSRRead:
		return "msr-read"
	case KindMSRWrite:
		return "msr-write"
	case KindDecision:
		return "decision"
	case KindActuate:
		return "actuate"
	case KindRAPLThrottle:
		return "rapl-throttle"
	case KindRAPLRelease:
		return "rapl-release"
	case KindCStateSleep:
		return "cstate-sleep"
	case KindCStateWake:
		return "cstate-wake"
	case KindConstraint:
		return "constraint"
	case KindFaultInject:
		return "fault-inject"
	case KindFaultClear:
		return "fault-clear"
	case KindHealth:
		return "health"
	case KindLease:
		return "lease"
	case KindReconfigure:
		return "reconfigure"
	case KindEnergy:
		return "energy"
	case KindAnomaly:
		return "anomaly"
	}
	return "unknown"
}

// Actuation codes carried in Event.Arg of KindActuate events.
const (
	ActSetFreq uint32 = iota
	ActPark
	ActWake
)

// Event is one fixed-size flight-recorder record.
type Event struct {
	// Seq numbers events globally and monotonically across all sources;
	// sorting a snapshot by Seq recovers the causal order.
	Seq uint64
	// Time is the run clock at the event: virtual time when a simulated
	// machine drives the recorder's clock, wall time since recorder
	// creation otherwise.
	Time time.Duration
	// Wall is monotonic wall time since recorder creation, stamped even in
	// virtual runs, so span latencies (sample→decide→actuate) are real.
	Wall time.Duration
	// Kind and Source classify the event.
	Kind   Kind
	Source Source
	// Core is the affected logical CPU, or -1 for package-scope events.
	Core int16
	// Interval is the control-interval id (daemon iteration number) the
	// event belongs to; 0 covers everything before the first iteration.
	Interval uint32
	// Arg, Value, Aux carry kind-specific payload; see the Kind docs.
	Arg   uint32
	Value uint64
	Aux   uint64
}

// DefaultCapacity is the per-source ring capacity when the caller passes a
// non-positive one: at the paper's one actuation per core per second this
// retains hours, and at a 1 ms control interval still tens of seconds, of
// the busiest source.
const DefaultCapacity = 1 << 14

// ring is one source's fixed-capacity event buffer. The single writer only
// ever contends with snapshotters, so the mutex is uncontended on the
// record fast path.
type ring struct {
	mu     sync.Mutex
	buf    []Event
	next   int
	filled bool
}

func (r *ring) append(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// snapshot copies the retained events in append order.
func (r *ring) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

func (r *ring) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.buf)
	}
	return r.next
}

// Recorder is the flight recorder. A nil *Recorder is a valid disabled
// recorder: every method no-ops, so instrumented packages record
// unconditionally and pay one nil check when the recorder is off.
type Recorder struct {
	seq      atomic.Uint64
	interval atomic.Uint32
	clock    atomic.Value // func() time.Duration; run clock
	start    time.Time
	rings    [numSources]ring

	metaMu sync.Mutex
	meta   Meta
}

// New returns a recorder with the given per-source ring capacity
// (DefaultCapacity when non-positive).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{start: time.Now()}
	for i := range r.rings {
		r.rings[i].buf = make([]Event, capacity)
	}
	return r
}

// SetClock installs the run-clock source events are stamped with (a
// simulated machine installs its virtual clock). Without one, events carry
// wall time since recorder creation. Call before recording starts.
func (r *Recorder) SetClock(fn func() time.Duration) {
	if r == nil || fn == nil {
		return
	}
	r.clock.Store(fn)
}

// BeginInterval tags all subsequently recorded events with the given
// control-interval id; the daemon calls it at the top of every iteration so
// the sampling reads, the decision, and the actuations of one interval
// share an id.
func (r *Recorder) BeginInterval(n uint32) {
	if r == nil {
		return
	}
	r.interval.Store(n)
}

// Interval reports the current control-interval id.
func (r *Recorder) Interval() uint32 {
	if r == nil {
		return 0
	}
	return r.interval.Load()
}

// now reads the run clock.
func (r *Recorder) now() time.Duration {
	if fn, ok := r.clock.Load().(func() time.Duration); ok {
		return fn()
	}
	return time.Since(r.start)
}

// Record stamps the event with the next global sequence number, the run and
// wall clocks, and the current interval id, then appends it to its source's
// ring. It is allocation-free.
func (r *Recorder) Record(e Event) {
	if r == nil || e.Source >= numSources {
		return
	}
	e.Seq = r.seq.Add(1)
	e.Time = r.now()
	e.Wall = time.Since(r.start)
	e.Interval = r.interval.Load()
	r.rings[e.Source].append(e)
}

// RecordMSR implements the msr package's Recorder interface: one event per
// successful register access.
func (r *Recorder) RecordMSR(write bool, cpu int, reg uint32, val uint64) {
	if r == nil {
		return
	}
	k := KindMSRRead
	if write {
		k = KindMSRWrite
	}
	r.Record(Event{Kind: k, Source: SourceMSR, Core: int16(cpu), Arg: reg, Value: val})
}

// Total reports how many events have ever been recorded (retained or
// overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Len reports how many events are currently retained across all rings.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.rings {
		n += r.rings[i].len()
	}
	return n
}

// Snapshot copies the retained events of every source, merged and sorted by
// sequence number. The recorder keeps running while (and after) a snapshot
// is taken.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.rings {
		out = append(out, r.rings[i].snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// MergeMeta folds the non-zero fields of m into the recorder's dump
// metadata. The simulator contributes the machine description (chip, tick,
// energy unit), the daemon the control-plane description (policy, limit,
// interval, apps); a dump carries the union.
func (r *Recorder) MergeMeta(m Meta) {
	if r == nil {
		return
	}
	r.metaMu.Lock()
	defer r.metaMu.Unlock()
	r.meta.merge(m)
}

// Dump snapshots the recorder into a serialisable dump with the given
// trigger reason.
func (r *Recorder) Dump(reason string) Dump {
	if r == nil {
		return Dump{Meta: Meta{Version: FormatVersion, Reason: reason}}
	}
	r.metaMu.Lock()
	meta := r.meta
	r.metaMu.Unlock()
	meta.Version = FormatVersion
	meta.Reason = reason
	return Dump{Meta: meta, Events: r.Snapshot()}
}
