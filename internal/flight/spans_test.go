package flight

import (
	"testing"
	"time"
)

func TestBuildSpans(t *testing.T) {
	us := func(n int) time.Duration { return time.Duration(n) * time.Microsecond }
	events := []Event{
		// Interval 0: priming.
		{Seq: 1, Interval: 0, Kind: KindMSRWrite, Wall: us(1)},
		{Seq: 2, Interval: 0, Kind: KindMSRRead, Wall: us(2)},
		// Interval 1: a full sample → decide → actuate pipeline plus a
		// machine-side constraint change.
		{Seq: 3, Interval: 1, Kind: KindMSRRead, Wall: us(10), Time: time.Second},
		{Seq: 4, Interval: 1, Kind: KindMSRRead, Wall: us(14), Time: time.Second},
		{Seq: 5, Interval: 1, Kind: KindDecision, Wall: us(20), Time: time.Second},
		{Seq: 6, Interval: 1, Kind: KindMSRWrite, Wall: us(25), Time: time.Second},
		{Seq: 7, Interval: 1, Kind: KindActuate, Wall: us(28), Time: time.Second},
		{Seq: 8, Interval: 1, Kind: KindConstraint, Wall: us(30), Time: time.Second},
	}
	spans := BuildSpans(events)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	s0, s1 := spans[0], spans[1]
	if s0.Interval != 0 || len(s0.Actuate.Events) != 1 || len(s0.Sample.Events) != 1 {
		t.Errorf("interval 0 misgrouped: %+v", s0)
	}
	if s1.Interval != 1 || s1.Time != time.Second {
		t.Errorf("interval 1 header wrong: %+v", s1)
	}
	if got := len(s1.Sample.Events); got != 2 {
		t.Errorf("sample events = %d, want 2", got)
	}
	if got := s1.Sample.Latency(); got != us(4) {
		t.Errorf("sample latency = %v, want 4µs", got)
	}
	if got := len(s1.Actuate.Events); got != 2 {
		t.Errorf("actuate events = %d, want 2", got)
	}
	if got := len(s1.Machine.Events); got != 1 {
		t.Errorf("machine events = %d, want 1", got)
	}
	if got := s1.Total(); got != us(18) {
		t.Errorf("total latency = %v, want 18µs", got)
	}
	if got := s0.Total(); got != us(1) {
		t.Errorf("interval 0 total = %v, want 1µs", got)
	}
	var empty IntervalSpan
	if empty.Total() != 0 {
		t.Error("empty span should have zero total")
	}
}
