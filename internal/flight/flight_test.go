package flight

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindMSRRead, Source: SourceMSR})
	r.RecordMSR(true, 0, 0x199, 42)
	r.BeginInterval(7)
	r.SetClock(func() time.Duration { return 0 })
	r.MergeMeta(Meta{Chip: "x"})
	if r.Total() != 0 || r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder should observe nothing")
	}
	d := r.Dump("test")
	if d.Meta.Version != FormatVersion || len(d.Events) != 0 {
		t.Fatalf("nil recorder dump = %+v", d)
	}
}

func TestRecordStampsSeqTimeInterval(t *testing.T) {
	r := New(8)
	var clock time.Duration
	r.SetClock(func() time.Duration { return clock })

	clock = 5 * time.Millisecond
	r.BeginInterval(3)
	r.Record(Event{Kind: KindDecision, Source: SourceDaemon, Core: -1, Arg: ReasonCode(core.ReasonShareRebalance)})
	clock = 6 * time.Millisecond
	r.RecordMSR(false, 2, 0xE8, 12345)

	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("seqs = %d,%d", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].Time != 5*time.Millisecond || evs[1].Time != 6*time.Millisecond {
		t.Errorf("times = %v,%v", evs[0].Time, evs[1].Time)
	}
	if evs[0].Interval != 3 || evs[1].Interval != 3 {
		t.Errorf("intervals = %d,%d", evs[0].Interval, evs[1].Interval)
	}
	if evs[1].Kind != KindMSRRead || evs[1].Core != 2 || evs[1].Arg != 0xE8 || evs[1].Value != 12345 {
		t.Errorf("msr event = %+v", evs[1])
	}
}

func TestRingOverwritesOldestConstantMemory(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindMSRWrite, Source: SourceMSR, Value: uint64(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestSnapshotMergesSourcesBySeq(t *testing.T) {
	r := New(8)
	r.Record(Event{Kind: KindMSRRead, Source: SourceMSR})
	r.Record(Event{Kind: KindDecision, Source: SourceDaemon, Core: -1})
	r.Record(Event{Kind: KindRAPLThrottle, Source: SourceRAPL, Core: -1})
	r.Record(Event{Kind: KindMSRWrite, Source: SourceMSR})
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not seq-sorted: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := New(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// One writer per source, as the design prescribes.
	for s := Source(0); s < numSources; s++ {
		wg.Add(1)
		go func(s Source) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Record(Event{Kind: KindMSRRead, Source: s, Value: uint64(i)})
			}
		}(s)
	}
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				_ = r.Len()
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-snapDone
	if want := uint64(numSources) * 2000; r.Total() != want {
		t.Fatalf("total = %d, want %d", r.Total(), want)
	}
}

func TestReasonCodesRoundTrip(t *testing.T) {
	reasons := []core.Reason{
		core.ReasonInitial, core.ReasonWithinDeadband, core.ReasonPowerOverLimit,
		core.ReasonPowerUnderLimit, core.ReasonShareRebalance, core.ReasonTranslateOnly,
		core.ReasonLimitChange, core.ReasonThrottleLP, core.ReasonParkStarvedLP,
		core.ReasonThrottleHP, core.ReasonRestoreHP, core.ReasonWakeLP,
		core.ReasonRaiseLP, core.ReasonSaturated, core.ReasonReconfigure,
		core.ReasonSLOFallback, core.ReasonSLOBoost, core.ReasonSLORelax,
		core.ReasonSLOMet, core.ReasonSLOSaturated,
	}
	seen := make(map[uint32]bool)
	for _, r := range reasons {
		c := ReasonCode(r)
		if c == codeUnknown {
			t.Errorf("reason %q has no code", r)
		}
		if seen[c] {
			t.Errorf("reason %q shares code %d", r, c)
		}
		seen[c] = true
		if back := ReasonFromCode(c); back != r {
			t.Errorf("code %d decodes to %q, want %q", c, back, r)
		}
	}
	if ReasonFromCode(9999) != core.Reason("unknown") {
		t.Error("unknown code should decode to unknown")
	}
}

func TestConstraintCodesRoundTrip(t *testing.T) {
	for _, name := range []string{"idle", "request", "rapl-cap", "avx-licence", "turbo"} {
		if got := ConstraintFromCode(ConstraintCode(name)); got != name {
			t.Errorf("constraint %q round-trips to %q", name, got)
		}
	}
}

func TestMergeMeta(t *testing.T) {
	r := New(4)
	r.MergeMeta(Meta{Chip: "skylake", TickNS: 1e6, ESU: 14, NumCores: 4})
	r.MergeMeta(Meta{Policy: "frequency-shares", LimitWatts: 50, IntervalNS: 1e9,
		Apps: []MetaApp{{Name: "gcc", Core: 0, Shares: 90}}})
	d := r.Dump("sigquit")
	m := d.Meta
	if m.Chip != "skylake" || m.TickNS != 1e6 || m.ESU != 14 || m.NumCores != 4 {
		t.Errorf("machine meta lost: %+v", m)
	}
	if m.Policy != "frequency-shares" || m.LimitWatts != 50 || len(m.Apps) != 1 {
		t.Errorf("control meta lost: %+v", m)
	}
	if m.Reason != "sigquit" || m.Version != FormatVersion {
		t.Errorf("dump meta = %+v", m)
	}
}
