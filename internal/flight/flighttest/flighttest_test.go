package flighttest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flight"
)

func TestDumpWritesNamedFile(t *testing.T) {
	rec := flight.New(0)
	rec.Record(flight.Event{Kind: flight.KindDecision, Source: flight.SourceDaemon, Core: -1})
	dir := filepath.Join(t.TempDir(), "nested") // must be created on demand
	path, err := dump(dir, "TestX/sub case#01", rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(filepath.Base(path), "testfail-TestX_sub_case_01") {
		t.Errorf("dump name %q lacks sanitized test name", filepath.Base(path))
	}
	d, err := flight.ReadDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 1 {
		t.Errorf("dump has %d events, want 1", len(d.Events))
	}
}

func TestDumpOnFailureNoOps(t *testing.T) {
	// Unset env: registering must be a no-op even with a live recorder, and
	// nil recorders must never panic.
	old, had := os.LookupEnv(EnvVar)
	os.Unsetenv(EnvVar)
	defer func() {
		if had {
			os.Setenv(EnvVar, old)
		}
	}()
	DumpOnFailure(t, flight.New(0))
	DumpOnFailure(t, nil)
}

func TestSanitize(t *testing.T) {
	if got := sanitize("A/b c#1.x-_"); got != "A_b_c_1.x-_" {
		t.Errorf("sanitize = %q", got)
	}
}
