// Package flighttest hooks the flight recorder into tests: a test that
// drives a recorded run registers its recorder with DumpOnFailure, and if
// the test fails the ring is snapshotted to $FLIGHT_DUMP_DIR so the failure
// ships with its own replayable evidence (CI uploads the directory as an
// artifact). When FLIGHT_DUMP_DIR is unset the helper is a no-op, so local
// runs stay clean.
package flighttest

import (
	"os"
	"strings"
	"testing"

	"repro/internal/flight"
)

// EnvVar names the directory failing tests dump flight recordings into.
const EnvVar = "FLIGHT_DUMP_DIR"

// DumpOnFailure registers a cleanup that writes rec's dump to
// $FLIGHT_DUMP_DIR if (and only if) the test ends up failing. Safe to call
// with a nil recorder or without the environment set.
func DumpOnFailure(t testing.TB, rec *flight.Recorder) {
	t.Helper()
	dir := os.Getenv(EnvVar)
	if dir == "" || rec == nil {
		return
	}
	name := t.Name()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		path, err := dump(dir, name, rec)
		if err != nil {
			t.Logf("flighttest: could not write failure dump: %v", err)
			return
		}
		t.Logf("flighttest: flight recording of the failed run: %s", path)
	})
}

// dump snapshots the recorder to dir with the test name folded into the
// dump reason (and therefore the file name).
func dump(dir, testName string, rec *flight.Recorder) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	reason := "testfail-" + sanitize(testName)
	return flight.WriteDumpFile(dir, rec.Dump(reason))
}

// sanitize makes a subtest name (which may contain path separators and
// spaces) safe for a file name.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
