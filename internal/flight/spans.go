package flight

import "time"

// Phase is one stage of a control interval's span tree: the contiguous
// stretch of events belonging to sample, decide, or actuate. Wall times are
// offsets from recorder start, so End-Start is the stage's wall-clock
// latency as the daemon experienced it.
type Phase struct {
	Start, End time.Duration // wall-clock offsets; zero when empty
	Events     []Event
}

// Latency is the phase's wall-clock extent.
func (p Phase) Latency() time.Duration {
	if len(p.Events) == 0 {
		return 0
	}
	return p.End - p.Start
}

func (p *Phase) add(e Event) {
	if len(p.Events) == 0 || e.Wall < p.Start {
		p.Start = e.Wall
	}
	if e.Wall > p.End {
		p.End = e.Wall
	}
	p.Events = append(p.Events, e)
}

// IntervalSpan is one control interval's events decomposed into the
// daemon's sample → decide → actuate pipeline, plus the machine-side
// events (C-state and constraint transitions, RAPL cap moves) that
// happened on the same interval's watch.
type IntervalSpan struct {
	Interval uint32
	Time     time.Duration // virtual time of the interval's first event

	Sample  Phase // MSR reads issued by the telemetry sampler
	Decide  Phase // policy decisions with their typed reasons
	Actuate Phase // park/wake/setfreq actions and the MSR writes underneath
	Machine Phase // sim/RAPL background events
}

// Total is the sample→actuate wall-clock latency: from the first sampling
// read to the last actuation.
func (s IntervalSpan) Total() time.Duration {
	first, last := time.Duration(0), time.Duration(0)
	started := false
	for _, p := range []Phase{s.Sample, s.Decide, s.Actuate} {
		if len(p.Events) == 0 {
			continue
		}
		if !started || p.Start < first {
			first = p.Start
		}
		if p.End > last {
			last = p.End
		}
		started = true
	}
	if !started {
		return 0
	}
	return last - first
}

// BuildSpans decomposes a seq-ordered event stream (as produced by
// Snapshot or carried in a Dump) into per-interval span trees. Interval 0
// holds everything recorded before the first control iteration — the
// daemon's initial actuation and sampler priming.
func BuildSpans(events []Event) []IntervalSpan {
	var out []IntervalSpan
	cur := -1
	for _, e := range events {
		if cur < 0 || out[cur].Interval != e.Interval {
			out = append(out, IntervalSpan{Interval: e.Interval, Time: e.Time})
			cur = len(out) - 1
		}
		s := &out[cur]
		switch {
		case e.Kind == KindMSRRead:
			s.Sample.add(e)
		case e.Kind == KindDecision:
			s.Decide.add(e)
		case e.Kind == KindActuate || e.Kind == KindMSRWrite:
			s.Actuate.add(e)
		default:
			s.Machine.add(e)
		}
	}
	return out
}
