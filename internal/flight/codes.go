package flight

import "repro/internal/core"

// Decision-reason codes map the closed core.Reason vocabulary onto the
// stable uint32 codes carried in KindDecision events. Codes are part of the
// dump format: once assigned they must not be renumbered, only appended.
const (
	codeUnknown uint32 = iota
	codeInitial
	codeWithinDeadband
	codePowerOverLimit
	codePowerUnderLimit
	codeShareRebalance
	codeTranslateOnly
	codeLimitChange
	codeThrottleLP
	codeParkStarvedLP
	codeThrottleHP
	codeRestoreHP
	codeWakeLP
	codeRaiseLP
	codeSaturated
	codeReconfigure
	codeSLOFallback
	codeSLOBoost
	codeSLORelax
	codeSLOMet
	codeSLOSaturated
)

var reasonCodes = map[core.Reason]uint32{
	core.ReasonInitial:         codeInitial,
	core.ReasonWithinDeadband:  codeWithinDeadband,
	core.ReasonPowerOverLimit:  codePowerOverLimit,
	core.ReasonPowerUnderLimit: codePowerUnderLimit,
	core.ReasonShareRebalance:  codeShareRebalance,
	core.ReasonTranslateOnly:   codeTranslateOnly,
	core.ReasonLimitChange:     codeLimitChange,
	core.ReasonThrottleLP:      codeThrottleLP,
	core.ReasonParkStarvedLP:   codeParkStarvedLP,
	core.ReasonThrottleHP:      codeThrottleHP,
	core.ReasonRestoreHP:       codeRestoreHP,
	core.ReasonWakeLP:          codeWakeLP,
	core.ReasonRaiseLP:         codeRaiseLP,
	core.ReasonSaturated:       codeSaturated,
	core.ReasonReconfigure:     codeReconfigure,
	core.ReasonSLOFallback:     codeSLOFallback,
	core.ReasonSLOBoost:        codeSLOBoost,
	core.ReasonSLORelax:        codeSLORelax,
	core.ReasonSLOMet:          codeSLOMet,
	core.ReasonSLOSaturated:    codeSLOSaturated,
}

var reasonNames = func() map[uint32]core.Reason {
	m := make(map[uint32]core.Reason, len(reasonCodes))
	for r, c := range reasonCodes {
		m[c] = r
	}
	return m
}()

// ReasonCode returns the dump code for a policy reason (codeUnknown for a
// reason outside the closed vocabulary).
func ReasonCode(r core.Reason) uint32 { return reasonCodes[r] }

// ReasonFromCode inverts ReasonCode; unknown codes decode as "unknown".
func ReasonFromCode(c uint32) core.Reason {
	if r, ok := reasonNames[c]; ok {
		return r
	}
	return core.Reason("unknown")
}

// Constraint codes carried in Event.Arg of KindConstraint events, matching
// the simulator's binding-constraint classification.
const (
	ConstraintIdle uint32 = iota
	ConstraintRequest
	ConstraintRAPLCap
	ConstraintAVXLicence
	ConstraintTurbo
	ConstraintThermal
)

var constraintCodes = map[string]uint32{
	"idle":        ConstraintIdle,
	"request":     ConstraintRequest,
	"rapl-cap":    ConstraintRAPLCap,
	"avx-licence": ConstraintAVXLicence,
	"turbo":       ConstraintTurbo,
	"thermal":     ConstraintThermal,
}

var constraintNames = func() map[uint32]string {
	m := make(map[uint32]string, len(constraintCodes))
	for s, c := range constraintCodes {
		m[c] = s
	}
	return m
}()

// ConstraintCode maps the simulator's constraint name to its dump code.
func ConstraintCode(name string) uint32 { return constraintCodes[name] }

// ConstraintFromCode inverts ConstraintCode.
func ConstraintFromCode(c uint32) string {
	if s, ok := constraintNames[c]; ok {
		return s
	}
	return "unknown"
}

// Fault class codes carried in Event.Arg of KindFaultInject/KindFaultClear
// events. They mirror internal/fault's class vocabulary; like reason codes
// they are part of the dump format and may only be appended to.
const (
	FaultEIO uint32 = iota
	FaultStuck
	FaultTorn
	FaultLatency
	FaultThermal
	FaultRAPL
	FaultOffline
)

// FaultName names a fault class code for reports.
func FaultName(c uint32) string {
	switch c {
	case FaultEIO:
		return "eio"
	case FaultStuck:
		return "stuck"
	case FaultTorn:
		return "torn"
	case FaultLatency:
		return "latency"
	case FaultThermal:
		return "thermal"
	case FaultRAPL:
		return "rapl"
	case FaultOffline:
		return "offline"
	}
	return "unknown"
}

// Health codes carried in Event.Arg of KindHealth events: the daemon's
// per-core health state machine degrading a core (policy input frozen at the
// last good sample, actuation forced to the safe floor) or re-admitting it
// after sustained healthy telemetry.
const (
	HealthDegraded uint32 = iota
	HealthReadmitted
)

// HealthName names a health transition code for reports.
func HealthName(c uint32) string {
	switch c {
	case HealthDegraded:
		return "degraded"
	case HealthReadmitted:
		return "readmitted"
	}
	return "unknown"
}

// Lease codes carried in Event.Arg of KindLease events: the node agent's
// lease state machine. Like every Arg vocabulary they are part of the dump
// format and may only be appended to.
const (
	// LeaseGrant: a coordinator granted (or raised/lowered) a budget lease;
	// Value is the granted cap in µW, Aux the TTL in ns.
	LeaseGrant uint32 = iota
	// LeaseRenew: an active lease was renewed before expiry; payload as for
	// LeaseGrant.
	LeaseRenew
	// LeaseExpire: the lease TTL elapsed without renewal (coordinator lost);
	// Value is the expired cap in µW.
	LeaseExpire
	// LeaseFallback: the agent programmed the safe fallback cap; Value is
	// the fallback cap in µW, Aux the cap it replaced in µW.
	LeaseFallback
	// LeaseRefuse: a grant was refused (node draining, or a malformed
	// grant); Value is the refused cap in µW.
	LeaseRefuse
)

// LeaseName names a lease transition code for reports.
func LeaseName(c uint32) string {
	switch c {
	case LeaseGrant:
		return "grant"
	case LeaseRenew:
		return "renew"
	case LeaseExpire:
		return "expire"
	case LeaseFallback:
		return "fallback"
	case LeaseRefuse:
		return "refuse"
	}
	return "unknown"
}

// Reconfigure codes carried in Event.Arg of KindReconfigure events: which
// part of a running daemon's configuration a live reconfiguration touched.
const (
	ReconfigPolicy uint32 = iota
	ReconfigShares
	ReconfigLimit
	ReconfigDrain
	// ReconfigSLO: the set of live p99 objectives stamped onto service
	// telemetry was replaced.
	ReconfigSLO
)

// ReconfigName names a reconfiguration code for reports.
func ReconfigName(c uint32) string {
	switch c {
	case ReconfigPolicy:
		return "policy"
	case ReconfigShares:
		return "shares"
	case ReconfigLimit:
		return "limit"
	case ReconfigDrain:
		return "drain"
	case ReconfigSLO:
		return "slo"
	}
	return "unknown"
}

// Energy account sentinels carried in Event.Arg of KindEnergy events.
// Small Arg values are app indices in spec order (flight.Meta.Apps order in
// a dump); the sentinels occupy the top of the uint32 range so they can
// never collide with a real app index. Like every Arg vocabulary they are
// part of the dump format and may only be appended to (downward).
const (
	// EnergyArgUnattributed: socket energy measured by trustworthy
	// counters that no app weight claims (idle/static power).
	EnergyArgUnattributed uint32 = 0xFFFFFFFF
	// EnergyArgExcluded: socket energy withheld from attribution because
	// a counter on that socket was untrustworthy this interval.
	EnergyArgExcluded uint32 = 0xFFFFFFFE
	// EnergyArgTotal: total socket energy integrated (attributed +
	// unattributed + excluded).
	EnergyArgTotal uint32 = 0xFFFFFFFD
	// EnergyArgLimit: the integral of the enforced power limit (the
	// energy budget the cap allowed).
	EnergyArgLimit uint32 = 0xFFFFFFFC
	// EnergyArgOvershoot: the integral of max(0, package power − limit).
	EnergyArgOvershoot uint32 = 0xFFFFFFFB
)

// EnergyArgName names an energy account sentinel (or "app" for an app
// index) for reports.
func EnergyArgName(a uint32) string {
	switch a {
	case EnergyArgUnattributed:
		return "unattributed"
	case EnergyArgExcluded:
		return "excluded"
	case EnergyArgTotal:
		return "total"
	case EnergyArgLimit:
		return "limit"
	case EnergyArgOvershoot:
		return "overshoot"
	}
	return "app"
}

// Anomaly codes carried in Event.Arg of KindAnomaly events: the energy
// ledger's streaming detectors. Append-only, like every Arg vocabulary.
const (
	// AnomalyOvershoot: package power sustained above limit×(1+margin);
	// Value is the overshoot in µW, Aux the consecutive intervals over.
	AnomalyOvershoot uint32 = iota
	// AnomalyOscillation: the enforced cap thrashing direction; Value is
	// the current limit in µW, Aux the direction flips in the window.
	AnomalyOscillation
	// AnomalyShareDrift: an app's energy share drifting from its granted
	// share; Core is the app core, Value the observed energy fraction in
	// ppm, Aux the granted share fraction in ppm.
	AnomalyShareDrift
	// AnomalyStraggler: a socket's telemetry untrustworthy for a
	// sustained run; Core is the socket index, Aux the consecutive
	// untrustworthy intervals.
	AnomalyStraggler
)

// AnomalyName names an anomaly code for reports and metric labels.
func AnomalyName(c uint32) string {
	switch c {
	case AnomalyOvershoot:
		return "overshoot"
	case AnomalyOscillation:
		return "oscillation"
	case AnomalyShareDrift:
		return "share-drift"
	case AnomalyStraggler:
		return "straggler"
	}
	return "unknown"
}

// ActName names an actuation code for reports.
func ActName(a uint32) string {
	switch a {
	case ActSetFreq:
		return "set-freq"
	case ActPark:
		return "park"
	case ActWake:
		return "wake"
	}
	return "unknown"
}
