package padpd_test

import (
	"fmt"
	"log"
	"time"

	padpd "repro"
)

// Example runs the paper's headline scenario: a low-demand application
// protected from a power virus by 90/10 frequency shares at 40 W.
func Example() {
	chip := padpd.Skylake()
	m, err := padpd.NewMachine(chip)
	if err != nil {
		log.Fatal(err)
	}
	specs := []padpd.AppSpec{
		{Name: "gcc", Core: 0, Shares: 90},
		{Name: "cpuburn", Core: 1, Shares: 10, AVX: true},
	}
	for _, s := range specs {
		if err := m.Pin(padpd.NewInstance(padpd.MustProfile(s.Name)), s.Core); err != nil {
			log.Fatal(err)
		}
	}
	pol, err := padpd.NewFrequencyShares(chip, specs, padpd.ShareConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d, err := padpd.NewDaemon(padpd.DaemonConfig{
		Chip: chip, Policy: pol, Apps: specs, Limit: 25,
	}, m.Device(), padpd.MachineActuator{M: m})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		log.Fatal(err)
	}
	m.Run(60 * time.Second)
	snap := d.LastSnapshot()
	fmt.Printf("gcc: %v, cpuburn: %v\n", snap.Apps[0].Freq, snap.Apps[1].Freq)
	// Output:
	// gcc: 3.00 GHz, cpuburn: 900 MHz
}

// ExampleUsefulFrequency derives a memory-bound application's highest
// useful frequency from two telemetry samples (the paper's Section 4.4
// refinement).
func ExampleUsefulFrequency() {
	chip := padpd.Skylake()
	lbm := padpd.MustProfile("lbm")
	fLo, fHi := 1000*padpd.MHz, 2000*padpd.MHz
	cap, err := padpd.UsefulFrequency(fLo, lbm.IPS(fLo), fHi, lbm.IPS(fHi), chip.Freq, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cap)
	// Output:
	// 1.60 GHz
}

// ExampleClusterPStates maps per-core targets onto the Ryzen 1700X's three
// simultaneous P-states.
func ExampleClusterPStates() {
	chip := padpd.Ryzen()
	targets := []padpd.Hertz{
		3400 * padpd.MHz, 3300 * padpd.MHz, // a fast group
		2000 * padpd.MHz, 2100 * padpd.MHz, // a middle group
		800 * padpd.MHz, // a slow group
	}
	for _, f := range padpd.ClusterPStates(targets, 3, chip.Freq) {
		fmt.Println(f)
	}
	// Output:
	// 3.30 GHz
	// 3.30 GHz
	// 2.00 GHz
	// 2.00 GHz
	// 800 MHz
}

// ExampleProfile_IPS shows the two-term latency model: the memory-bound
// benchmark gains far less from a frequency doubling than the core-bound
// one.
func ExampleProfile_IPS() {
	lbm := padpd.MustProfile("lbm")        // memory-bound
	exch := padpd.MustProfile("exchange2") // core-bound
	speedup := func(p padpd.Profile) float64 {
		return p.IPS(3000*padpd.MHz) / p.IPS(1500*padpd.MHz)
	}
	fmt.Printf("lbm: %.2fx, exchange2: %.2fx\n", speedup(lbm), speedup(exch))
	// Output:
	// lbm: 1.35x, exchange2: 1.93x
}

// ExampleNewTimeSharedCore reproduces the paper's Section 4.3 observation:
// time-shared core power is the time-weighted sum of the apps' solo draws.
func ExampleNewTimeSharedCore() {
	c, err := padpd.NewTimeSharedCore(padpd.Ryzen(), 3400*padpd.MHz)
	if err != nil {
		log.Fatal(err)
	}
	hd := padpd.MustProfile("cactusBSSN")
	hd.Phases = nil
	if err := c.Add(padpd.NewInstance(hd), 0.5); err != nil {
		log.Fatal(err)
	}
	c.Run(10 * time.Second)
	fmt.Printf("50%% cactusBSSN: %v\n", c.AveragePower())
	// Output:
	// 50% cactusBSSN: 5.76 W
}
