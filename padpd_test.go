package padpd

import (
	"testing"
	"time"
)

// The facade must be sufficient to express the paper's headline scenario
// end to end without touching internal packages (the examples rely on
// this).
func TestFacadeEndToEnd(t *testing.T) {
	chip := Skylake()
	m, err := NewMachine(chip, WithTick(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(NewInstance(MustProfile("gcc")), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(NewInstance(MustProfile("cam4")), 1); err != nil {
		t.Fatal(err)
	}
	specs := []AppSpec{
		{Name: "gcc", Core: 0, Shares: 90},
		{Name: "cam4", Core: 1, Shares: 10, AVX: true},
	}
	pol, err := NewFrequencyShares(chip, specs, ShareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(DaemonConfig{Chip: chip, Policy: pol, Apps: specs, Limit: 30},
		m.Device(), MachineActuator{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachVirtual(m); err != nil {
		t.Fatal(err)
	}
	m.Run(30 * time.Second)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	snap := d.LastSnapshot()
	if snap.PackagePower > 30*1.05 {
		t.Errorf("package power %v over the 30 W limit", snap.PackagePower)
	}
	if snap.Apps[0].Freq <= snap.Apps[1].Freq {
		t.Errorf("share ordering violated: %v vs %v", snap.Apps[0].Freq, snap.Apps[1].Freq)
	}
}

func TestFacadeWorkloadsAndPlatforms(t *testing.T) {
	if got := len(SPEC2017()); got != 11 {
		t.Errorf("SPEC2017 subset = %d profiles", got)
	}
	if _, err := ProfileByName("leela"); err != nil {
		t.Error(err)
	}
	if _, err := PlatformByName("ryzen"); err != nil {
		t.Error(err)
	}
	if CPUBurn.Activity <= 1 {
		t.Error("cpuburn should be a power virus")
	}
	if (2 * GHz).GHzF() != 2 {
		t.Error("unit aliases broken")
	}
}

func TestFacadeTimeSharedCore(t *testing.T) {
	c, err := NewTimeSharedCore(Ryzen(), 3400*MHz)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(NewInstance(MustProfile("gcc")), 0.5); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	if c.AveragePower() <= 0 {
		t.Error("no power measured")
	}
}

func TestFacadeWebsearch(t *testing.T) {
	m, err := NewMachine(Skylake())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWebsearch(WebsearchConfig{Users: 20, Cores: []int{0, 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Attach(m); err != nil {
		t.Fatal(err)
	}
	m.Run(5 * time.Second)
	if ws.Completed() == 0 {
		t.Error("websearch served nothing")
	}
}

func TestFacadeMSRAndSampler(t *testing.T) {
	dev, err := NewFileMSRDevice(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(dev, 2, 2200*MHz, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeClusterPStates(t *testing.T) {
	chip := Ryzen()
	out := ClusterPStates([]Hertz{3 * GHz, 1 * GHz, 2 * GHz, 2900 * MHz}, 3, chip.Freq)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
}
